"""Tests for the multi-tenant serving subsystem (:mod:`repro.server`).

Covers the serving contracts of ``docs/SERVING.md``:

* interleaved multi-tenant runs are functionally identical (bit-for-bit
  tables, bit-identical per-query simulated seconds) to serial
  single-session runs;
* shared-cache semantics: cross-tenant reuse, exact invalidation on
  ``register(replace=True)`` / ``drop`` under concurrent queries,
  tenant-tagged attribution, and the server's ownership of the knobs;
* admission control: bounded-queue backpressure, per-tenant memory
  budgets and concurrency limits, priority classes, round-robin fairness;
* the device-aware scheduler: CPU/GPU streams overlap, hybrid queries
  reserve both device kinds, occupancy epochs reset per ``run()``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import HAPEEngine
from repro.errors import (
    AdmissionError,
    ServingError,
    UnknownTenantError,
)
from repro.hardware import default_server
from repro.relational import agg_count, agg_sum, col, lit, scan
from repro.server import (
    DeviceScheduler,
    QueryServer,
    TenantPolicy,
)
from repro.storage import Table
from repro.workloads import all_queries


def _table_bytes(result_table) -> tuple:
    return tuple(sorted(
        (name, result_table.array(name).tobytes(),
         str(result_table.array(name).dtype))
        for name in result_table.column_names))


@pytest.fixture
def tpch_server(tpch_dataset):
    server = QueryServer(default_server())
    server.register_dataset(tpch_dataset.tables)
    return server


def _small_tables(seed: int = 5) -> dict[str, Table]:
    rng = np.random.default_rng(seed)
    return {
        "tx": Table.from_arrays("tx", {
            "xk": rng.integers(0, 5, 64, dtype=np.int64),
            "xv": rng.integers(0, 100, 64, dtype=np.int64),
        }),
        "ty": Table.from_arrays("ty", {
            "yk": rng.integers(0, 5, 48, dtype=np.int64),
            "yv": rng.integers(0, 100, 48, dtype=np.int64),
        }),
    }


def _plan_x():
    return (scan("tx").filter(col("xv") < lit(90))
            .aggregate(["xk"], [agg_count("cnt"), agg_sum(col("xv"), "s")]))


def _plan_y():
    return (scan("ty")
            .aggregate(["yk"], [agg_count("cnt"), agg_sum(col("yv"), "s")]))


# ----------------------------------------------------------------------
# Serving is functionally identical to serial single-session execution
# ----------------------------------------------------------------------
class TestServedResultsIdentity:
    def test_interleaved_runs_identical_to_serial(self, tpch_dataset,
                                                  tpch_server):
        queries = all_queries(tpch_dataset)
        submissions = []
        for tenant, mode in (("alpha", "cpu"), ("beta", "gpu"),
                             ("gamma", "hybrid")):
            tpch_server.open_session(tenant)
            for name, query in queries.items():
                ticket = tpch_server.submit(tenant, query.plan, mode,
                                            label=f"{name}/{mode}")
                submissions.append((ticket, query.plan, mode))
        report = tpch_server.run()
        assert report.completed == len(submissions)

        # A fresh serial session (private catalog and cache) must produce
        # bit-identical tables and simulated seconds for every query.
        serial = HAPEEngine(default_server())
        serial.register_dataset(tpch_dataset.tables)
        for ticket, plan, mode in submissions:
            solo = serial.execute(plan, mode)
            assert ticket.status == "completed"
            assert ticket.result.simulated_seconds == solo.simulated_seconds
            assert ticket.result.device_busy == solo.device_busy
            assert _table_bytes(ticket.result.table) == \
                _table_bytes(solo.table)

    def test_shared_cache_serves_second_tenant_warm(self, tpch_dataset,
                                                    tpch_server):
        queries = all_queries(tpch_dataset)
        plan = queries["Q1"].plan
        tpch_server.submit("cold-tenant", plan, "cpu")
        tpch_server.submit("warm-tenant", plan, "cpu")
        report = tpch_server.run()
        cold, warm = report.tickets
        assert cold.tenant == "cold-tenant" and cold.cache.misses > 0
        assert warm.tenant == "warm-tenant"
        assert warm.cache.misses == 0 and warm.cache.hits > 0
        counters = tpch_server.query_cache.tenant_counters()
        assert counters["warm-tenant"].misses == 0
        assert counters["warm-tenant"].hits == warm.cache.hits

    def test_tenant_sessions_cannot_retune_shared_cache(self, tpch_server):
        session = tpch_server.open_session("tenant")
        with pytest.raises(ValueError, match="server-owned"):
            session.cache_budget_bytes = 123
        with pytest.raises(ValueError, match="server-owned"):
            session.cache_eviction = "cost"

    def test_shared_cache_requires_shared_catalog(self, tpch_server):
        # A shared cache with a private catalog would collide catalog
        # version counters across sessions (cross-catalog poisoning).
        with pytest.raises(ValueError, match="shared catalog"):
            HAPEEngine(default_server(),
                       query_cache=tpch_server.query_cache)

    def test_peak_intermediate_bytes_reported(self, tpch_dataset,
                                              tpch_server):
        queries = all_queries(tpch_dataset)
        tpch_server.submit("tenant", queries["Q5"].plan, "cpu")
        report = tpch_server.run()
        assert report.tickets[0].result.peak_intermediate_bytes > 0
        assert report.tenants["tenant"].peak_intermediate_bytes > 0


# ----------------------------------------------------------------------
# Shared-cache invalidation under concurrent queries
# ----------------------------------------------------------------------
class TestSharedCacheInvalidation:
    def test_replace_invalidates_exactly_under_concurrency(self):
        server = QueryServer(default_server())
        tables = _small_tables()
        server.register_dataset(tables)
        for tenant in ("a", "b"):
            server.open_session(tenant)
            server.submit(tenant, _plan_x(), "cpu")
            server.submit(tenant, _plan_y(), "cpu")
        server.run()  # warm both plans for both tenants

        # Replace tx: exactly the entries reading tx must be discarded.
        rng = np.random.default_rng(99)
        replacement = Table.from_arrays("tx", {
            "xk": rng.integers(0, 5, 32, dtype=np.int64),
            "xv": rng.integers(0, 100, 32, dtype=np.int64),
        })
        server.register_table(replacement, replace=True)
        assert server.query_cache.stats().invalidated > 0

        for tenant in ("a", "b"):
            server.submit(tenant, _plan_x(), "cpu", label="x")
            server.submit(tenant, _plan_y(), "cpu", label="y")
        report = server.run()
        for ticket in report.tickets:
            if ticket.label == "y":
                # Untouched table: still fully warm for every tenant.
                assert ticket.cache.misses == 0
        first_x = next(t for t in report.tickets if t.label == "x")
        assert first_x.cache.misses > 0  # recomputed against new data

        # Correctness of the recomputed result against a fresh engine.
        check = HAPEEngine(default_server())
        check.register_table(replacement)
        expected = check.execute(_plan_x(), "cpu")
        assert _table_bytes(first_x.result.table) == \
            _table_bytes(expected.table)

    def test_drop_invalidates_shared_entries(self):
        server = QueryServer(default_server())
        server.register_dataset(_small_tables())
        server.submit("a", _plan_y(), "cpu")
        server.run()
        before = server.query_cache.stats().invalidated
        server.drop_table("ty")
        assert server.query_cache.stats().invalidated > before


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_bounded_queue_backpressure(self):
        server = QueryServer(default_server())
        server.register_dataset(_small_tables())
        server.open_session("t", max_queue_depth=2)
        server.submit("t", _plan_x(), "cpu")
        server.submit("t", _plan_x(), "cpu")
        with pytest.raises(AdmissionError, match="backpressure"):
            server.submit("t", _plan_x(), "cpu")
        report = server.run()
        assert report.completed == 2
        assert report.rejected == 1
        assert report.tenants["t"].rejected == 1
        statuses = [ticket.status for ticket in report.tickets]
        assert statuses.count("rejected") == 1

    def test_oversized_query_rejected_at_submit(self):
        server = QueryServer(default_server())
        server.register_dataset(_small_tables())
        server.open_session("t", memory_budget_bytes=8)
        with pytest.raises(AdmissionError, match="byte tenant budget"):
            server.submit("t", _plan_x(), "cpu")

    def test_memory_budget_serializes_in_flight_queries(self):
        server = QueryServer(default_server())
        tables = _small_tables()
        server.register_dataset(tables)
        estimate = tables["tx"].nbytes
        # Concurrency would allow both, but the budget holds one at a time.
        server.open_session("t", max_concurrency=4,
                            memory_budget_bytes=int(estimate * 1.5))
        first = server.submit("t", _plan_x(), "cpu")
        second = server.submit("t", scan("tx").filter(col("xv") < lit(50))
                               .aggregate([], [agg_count("c")]), "cpu")
        server.run()
        assert second.start_time >= first.finish_time
        assert second.queue_wait > 0

    def test_default_concurrency_is_closed_loop(self):
        server = QueryServer(default_server())
        server.register_dataset(_small_tables())
        first = server.submit("t", _plan_x(), "cpu")
        second = server.submit("t", _plan_y(), "cpu")
        server.run()
        # max_concurrency=1: the second query starts only after the first
        # finishes, even though it uses the same idle-at-t=0 devices.
        assert second.start_time >= first.finish_time

    def test_future_submit_time_delays_start(self):
        server = QueryServer(default_server())
        server.register_dataset(_small_tables())
        late = server.submit("t", _plan_x(), "cpu", at=1.0)
        server.run()
        assert late.start_time >= 1.0
        assert late.queue_wait == late.start_time - 1.0

    def test_unknown_tenant_and_duplicate_open(self):
        server = QueryServer(default_server())
        with pytest.raises(UnknownTenantError):
            server.session("ghost")
        server.open_session("t")
        with pytest.raises(ServingError, match="already open"):
            server.open_session("t")

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="priority"):
            TenantPolicy(priority="vip")
        with pytest.raises(ValueError, match="max_concurrency"):
            TenantPolicy(max_concurrency=0)
        with pytest.raises(ValueError, match="max_queue_depth"):
            TenantPolicy(max_queue_depth=0)
        with pytest.raises(ValueError, match="memory_budget_bytes"):
            TenantPolicy(memory_budget_bytes=-1)


# ----------------------------------------------------------------------
# Fairness and priority classes
# ----------------------------------------------------------------------
class TestFairnessAndPriority:
    def test_equal_priority_round_robin(self):
        server = QueryServer(default_server())
        server.register_dataset(_small_tables())
        for tenant in ("a", "b"):
            server.open_session(tenant, max_concurrency=3)
            for _ in range(3):
                server.submit(tenant, _plan_x(), "cpu")
        report = server.run()
        ordered = sorted((t for t in report.tickets
                          if t.status == "completed"),
                         key=lambda t: (t.start_time, t.ticket_id))
        assert [t.tenant for t in ordered] == ["a", "b", "a", "b", "a", "b"]

    def test_interactive_class_preempts_batch_queue(self):
        server = QueryServer(default_server())
        server.register_dataset(_small_tables())
        server.open_session("bg", priority="batch", max_concurrency=2)
        server.open_session("fg", priority="interactive", max_concurrency=2)
        # Batch submits first, but interactive dispatches first.
        bg = [server.submit("bg", _plan_x(), "cpu") for _ in range(2)]
        fg = [server.submit("fg", _plan_y(), "cpu") for _ in range(2)]
        server.run()
        assert max(t.start_time for t in fg) <= \
            min(t.start_time for t in bg)


# ----------------------------------------------------------------------
# Device-aware scheduling on the occupancy board
# ----------------------------------------------------------------------
class TestDeviceScheduler:
    def test_cpu_and_gpu_streams_overlap(self, tpch_dataset, tpch_server):
        queries = all_queries(tpch_dataset)
        for tenant, mode in (("cpu-a", "cpu"), ("gpu-a", "gpu"),
                             ("cpu-b", "cpu"), ("gpu-b", "gpu")):
            tpch_server.open_session(tenant)
            for name, query in queries.items():
                tpch_server.submit(tenant, query.plan, mode)
        report = tpch_server.run()
        # The mixed workload must overlap: device-disjoint streams make
        # the server strictly faster than serial submission.
        assert report.makespan < report.serial_seconds
        assert report.speedup_vs_serial > 1.5
        cpu_reserved = set().union(*(t.reserved for t in report.tickets
                                     if t.mode == "cpu"))
        gpu_reserved = set().union(*(t.reserved for t in report.tickets
                                     if t.mode == "gpu"))
        # CPU-mode queries reserve only CPUs; GPU-mode queries are
        # GPU/PCIe-bound (they may also reserve a CPU when, at tiny scale,
        # its busy share clears the occupancy threshold — the cost model
        # decides, not the mode label).
        assert cpu_reserved and all(name.startswith("cpu")
                                    for name in cpu_reserved)
        assert any(name.startswith(("gpu", "pcie"))
                   for name in gpu_reserved)

    def test_hybrid_queries_reserve_both_kinds(self, tpch_dataset,
                                               tpch_server):
        queries = all_queries(tpch_dataset)
        tpch_server.submit("t", queries["Q5"].plan, "hybrid")
        report = tpch_server.run()
        reserved = report.tickets[0].reserved
        assert any(name.startswith("cpu") for name in reserved)
        assert any(name.startswith("gpu") for name in reserved)

    def test_each_run_is_a_fresh_occupancy_epoch(self, tpch_dataset,
                                                 tpch_server):
        plan = all_queries(tpch_dataset)["Q1"].plan
        tpch_server.submit("t", plan, "cpu")
        first = tpch_server.run().tickets[0]
        tpch_server.submit("t", plan, "cpu")
        second = tpch_server.run().tickets[0]
        assert first.start_time == 0.0
        assert second.start_time == 0.0
        assert first.finish_time == second.finish_time

    def test_occupancy_board_survives_engine_resets(self, tpch_dataset):
        # Engine executions reset per-query clocks; server-time occupancy
        # must not rewind with them.
        topology = default_server()
        engine = HAPEEngine(topology)
        engine.register_dataset(tpch_dataset.tables)
        topology.occupancy.reserve({"cpu0": 1.0}, label="standing")
        engine.execute(all_queries(tpch_dataset)["Q1"].plan, "cpu")
        assert topology.occupancy.clock("cpu0").available_at == 1.0

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="occupancy_threshold"):
            DeviceScheduler(default_server(), occupancy_threshold=1.5)

    def test_latency_accounting(self, tpch_dataset, tpch_server):
        queries = all_queries(tpch_dataset)
        for _ in range(2):
            tpch_server.submit("t", queries["Q1"].plan, "cpu")
        report = tpch_server.run()
        for ticket in report.tickets:
            assert ticket.latency == pytest.approx(
                ticket.queue_wait + ticket.result.simulated_seconds)
        assert report.percentile_latency(50) <= report.percentile_latency(99)
        assert "t:" in report.describe() or "t" in report.tenants


# ----------------------------------------------------------------------
# Statistics-backed admission (working-set estimates)
# ----------------------------------------------------------------------
class TestStatisticsAdmission:
    def test_selective_query_admitted_under_tight_budget(self, tpch_dataset):
        # The headline admission fix: a highly selective probe over the
        # biggest table charges only the working set it materializes, so
        # a budget far below the table's bytes admits it.  The legacy
        # full-referenced-table estimate would reject at submit.
        server = QueryServer(default_server())
        server.register_dataset(tpch_dataset.tables)
        lineitem_bytes = tpch_dataset.tables["lineitem"].nbytes
        budget = lineitem_bytes // 8
        server.open_session("t", memory_budget_bytes=budget)
        plan = (scan("lineitem")
                .filter(col("l_orderkey") == lit(1))
                .aggregate([], [agg_sum(col("l_extendedprice"), "s")]))
        ticket = server.submit("t", plan, "cpu")
        assert ticket.estimated_bytes < budget < lineitem_bytes
        report = server.run()
        assert ticket.status == "completed"
        assert report.completed == 1

    def test_unbacked_estimate_falls_back_to_table_bytes(self, tpch_dataset):
        # A predicate the estimator cannot resolve (computed left-hand
        # side) keeps the conservative legacy estimate: every referenced
        # table's full bytes.
        server = QueryServer(default_server())
        server.register_dataset(tpch_dataset.tables)
        plan = (scan("lineitem")
                .filter((col("l_quantity") + lit(0.0)) > lit(0.0))
                .aggregate([], [agg_count("c")]))
        ticket = server.submit("t", plan, "cpu")
        assert ticket.estimated_bytes == \
            tpch_dataset.tables["lineitem"].nbytes
        server.run()
        assert ticket.status == "completed"


# ----------------------------------------------------------------------
# Deterministic shared-cache attribution (trace/commit)
# ----------------------------------------------------------------------
class TestSharedCacheAttribution:
    JOBS = (("alpha", "Q1"), ("beta", "Q1"), ("gamma", "Q1"),
            ("alpha", "Q5"), ("beta", "Q5"), ("gamma", "Q9"))

    def _run(self, tpch_dataset, workers):
        queries = all_queries(tpch_dataset)
        server = QueryServer(default_server(), workers=workers)
        server.register_dataset(tpch_dataset.tables)
        for tenant in ("alpha", "beta", "gamma"):
            server.open_session(tenant)
        tickets = [
            server.submit(tenant, queries[query].plan, "cpu",
                          label=f"{tenant}:{query}:{index}")
            for index, (tenant, query) in enumerate(self.JOBS)]
        report = server.run()
        return server, report, tickets

    @pytest.mark.parametrize("workers", [1, 2, "auto"])
    def test_counters_reconcile_exactly(self, tpch_dataset, workers):
        server, report, tickets = self._run(tpch_dataset, workers)
        totals = server.query_cache.counters()
        per_tenant = server.query_cache.tenant_counters()
        # Global == sum over tenants, exactly, at every worker count.
        assert totals.hits == sum(c.hits for c in per_tenant.values())
        assert totals.misses == sum(c.misses for c in per_tenant.values())
        # Tenant == sum over its tickets' per-query deltas.
        for tenant in ("alpha", "beta", "gamma"):
            mine = [t for t in tickets if t.tenant == tenant]
            assert per_tenant[tenant].hits == sum(t.cache.hits for t in mine)
            assert per_tenant[tenant].misses == \
                sum(t.cache.misses for t in mine)
        # Overlapping workloads actually shared: the first Q1 paid the
        # misses, the later structurally identical submissions rode warm.
        assert totals.hits > 0 and totals.misses > 0

    def test_attribution_identical_across_worker_counts(self, tpch_dataset):
        def fingerprint(workers):
            server, report, tickets = self._run(tpch_dataset, workers)
            return (
                [(t.label, t.status, t.cache.hits, t.cache.misses)
                 for t in report.tickets],
                {name: (c.hits, c.misses)
                 for name, c in server.query_cache.tenant_counters().items()},
                (server.query_cache.counters().hits,
                 server.query_cache.counters().misses),
            )

        baseline = fingerprint(1)
        assert fingerprint(2) == baseline
        assert fingerprint("auto") == baseline


# ----------------------------------------------------------------------
# Auto-mode placement (occupancy-aware)
# ----------------------------------------------------------------------
class TestAutoModePlacement:
    def test_least_loaded_kind_prefers_idle_silicon(self):
        topology = default_server()
        scheduler = DeviceScheduler(topology)
        from repro.hardware.specs import DeviceKind
        # Fresh board: tie goes to the CPUs.
        assert scheduler.least_loaded_kind() is DeviceKind.CPU
        topology.occupancy.reserve({"cpu0": 1.0, "cpu1": 1.0},
                                   label="standing")
        assert scheduler.least_loaded_kind() is DeviceKind.GPU
        topology.occupancy.reserve({"gpu0": 2.0, "gpu1": 2.0},
                                   label="standing")
        assert scheduler.least_loaded_kind() is DeviceKind.CPU

    def test_auto_mode_follows_the_occupancy_board(self, tpch_dataset):
        queries = all_queries(tpch_dataset)
        server = QueryServer(default_server())
        server.register_dataset(tpch_dataset.tables)
        server.open_session("t")  # max_concurrency=1: sequential picks
        first = server.submit("t", queries["Q6"].plan, "auto")
        second = server.submit("t", queries["Q6"].plan, "auto")
        report = server.run()
        assert report.completed == 2
        # Fresh board -> CPU; after the first reserved the CPUs, the
        # GPUs are the less-loaded kind for the second pick.
        assert first.final_mode == "cpu"
        assert second.final_mode == "gpu"

    def test_auto_mode_coprocesses_oversized_working_sets(self, tpch_dataset):
        from repro.hardware.specs import gtx_1080
        tiny_gpu = gtx_1080().with_memory_capacity(64 * 1024)
        server = QueryServer(default_server(gpu_spec=tiny_gpu))
        server.register_dataset(tpch_dataset.tables)
        plan = (scan("orders")
                .join(scan("lineitem", ["l_orderkey", "l_extendedprice"]),
                      ["o_orderkey"], ["l_orderkey"])
                .aggregate([], [agg_sum(col("l_extendedprice"), "s")]))
        ticket = server.submit("t", plan, "auto")
        server.run()
        assert ticket.status == "completed"
        assert ticket.final_mode in ("hybrid", "cpu")
        assert ticket.mode == "auto"  # the requested mode is preserved
