"""Tests for simulated clocks, timelines and memory pools."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import OutOfDeviceMemoryError
from repro.hardware import MemoryPool, SimClock, Timeline


class TestSimClock:
    def test_reserve_advances_availability(self):
        clock = SimClock("cpu0")
        first = clock.reserve(1.0, label="a")
        second = clock.reserve(0.5, label="b")
        assert first.start == 0.0 and first.end == 1.0
        assert second.start == 1.0 and second.end == 1.5
        assert clock.busy_time == pytest.approx(1.5)

    def test_reserve_respects_earliest(self):
        clock = SimClock("gpu0")
        record = clock.reserve(0.2, earliest=3.0)
        assert record.start == 3.0
        assert clock.available_at == pytest.approx(3.2)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            SimClock("x").reserve(-1.0)

    def test_reset(self):
        clock = SimClock("x")
        clock.reserve(1.0)
        clock.reset()
        assert clock.available_at == 0.0
        assert clock.busy_time == 0.0
        assert clock.records == ()

    def test_records_overlap_detection(self):
        clock = SimClock("x")
        a = clock.reserve(1.0)
        b = clock.reserve(1.0)
        assert not a.overlaps(b)
        assert a.overlaps(a)


class TestTimeline:
    def test_makespan_is_max_over_resources(self):
        a, b = SimClock("a"), SimClock("b")
        timeline = Timeline([a, b])
        a.reserve(2.0)
        b.reserve(0.5)
        assert timeline.makespan == pytest.approx(2.0)
        assert timeline.utilization("b") == pytest.approx(0.25)

    def test_duplicate_resource_rejected(self):
        timeline = Timeline([SimClock("a")])
        with pytest.raises(ValueError):
            timeline.add(SimClock("a"))

    def test_records_sorted_by_start(self):
        a, b = SimClock("a"), SimClock("b")
        timeline = Timeline([a, b])
        b.reserve(1.0, earliest=5.0)
        a.reserve(1.0)
        records = timeline.records()
        assert [record.resource for record in records] == ["a", "b"]

    def test_empty_timeline(self):
        assert Timeline().makespan == 0.0


class TestMemoryPool:
    def test_allocate_and_free(self):
        pool = MemoryPool("gpu0", 1000)
        allocation = pool.allocate(400, "hash table")
        assert pool.used_bytes == 400
        assert pool.free_bytes == 600
        allocation.free()
        assert pool.used_bytes == 0
        allocation.free()  # idempotent
        assert pool.used_bytes == 0

    def test_out_of_memory_raises(self):
        pool = MemoryPool("gpu0", 100)
        pool.allocate(80)
        with pytest.raises(OutOfDeviceMemoryError) as excinfo:
            pool.allocate(21)
        assert excinfo.value.device == "gpu0"
        assert excinfo.value.available == 20

    def test_context_manager_frees(self):
        pool = MemoryPool("cpu0", 100)
        with pool.allocate(50):
            assert pool.used_bytes == 50
        assert pool.used_bytes == 0

    def test_peak_tracking(self):
        pool = MemoryPool("gpu0", 1000)
        first = pool.allocate(300)
        second = pool.allocate(400)
        first.free()
        second.free()
        assert pool.peak_bytes == 700

    def test_negative_and_invalid(self):
        with pytest.raises(ValueError):
            MemoryPool("x", 0)
        pool = MemoryPool("x", 10)
        with pytest.raises(ValueError):
            pool.allocate(-1)

    @given(st.lists(st.integers(min_value=0, max_value=200), max_size=30))
    def test_usage_never_exceeds_capacity(self, sizes):
        """Property: whatever the allocation pattern, usage <= capacity."""
        pool = MemoryPool("gpu0", 1000)
        live = []
        for size in sizes:
            try:
                live.append(pool.allocate(size))
            except OutOfDeviceMemoryError:
                if live:
                    live.pop().free()
            assert 0 <= pool.used_bytes <= pool.capacity_bytes
        for allocation in live:
            allocation.free()
        assert pool.used_bytes == 0
