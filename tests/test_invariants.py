"""Engine-wide invariant matrix: (workers × fusion × morsel × warm/cold).

One parametrized grid replaces the ad-hoc identity checks that used to be
scattered across ``test_morsels.py`` (morsel invariance over TPC-H) and
``test_query_cache.py`` (warm-vs-cold TPC-H timings): for **every** TPC-H
workload query in **every** device mode, every configuration of

    workers ∈ {1, 2, "auto"}
  × pipeline_fusion ∈ {off, on}
  × morsel_rows ∈ {None, 977, engine default}
  × cache {cold, warm}

must report bit-identical outputs, bit-identical simulated seconds and
bit-identical execution stats records (per-device busy seconds and
per-link bytes) to the canonical baseline — one worker, fusion off,
whole-column packets, cold.  These knobs tune the *real*
wall-clock/working-set behavior of the engine; nothing the paper's
figures plot may move.  The worker axis is the parallel-execution
determinism contract: worker threads run only pure kernel work, all
merging/accounting happens on the query thread in canonical plan order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import HAPEEngine
from repro.hardware import default_server
from repro.relational import execute_logical
from repro.storage import DEFAULT_MORSEL_ROWS
from repro.workloads import EVALUATED_QUERIES, build_query

MODES = ("cpu", "gpu", "hybrid")
#: Whole-column packets, a non-divisor morsel size, and the default.
MORSEL_SETTINGS = (None, 977, DEFAULT_MORSEL_ROWS)
FUSION_SETTINGS = (False, True)
#: Serial, genuinely threaded, and whatever the host resolves "auto" to.
WORKER_SETTINGS = (1, 2, "auto")

CONFIGS = [
    pytest.param(fusion, morsel_rows, workers,
                 id=(f"fusion={'on' if fusion else 'off'}"
                     f"-morsel={morsel_rows}-workers={workers}"))
    for fusion in FUSION_SETTINGS
    for morsel_rows in MORSEL_SETTINGS
    for workers in WORKER_SETTINGS
]


def _record(result) -> tuple:
    """Everything a configuration must reproduce bit for bit."""
    return (
        result.simulated_seconds,
        tuple(sorted((name, result.table.array(name).tobytes(),
                      str(result.table.array(name).dtype))
                     for name in result.table.column_names)),
        tuple(sorted(result.device_busy.items())),
        tuple(sorted(result.link_bytes.items())),
    )


@pytest.fixture(scope="module")
def baseline(tpch_dataset):
    """Canonical per-(query, mode) records: fusion off, no morsels, cold."""
    engine = HAPEEngine(default_server(), morsel_rows=None,
                        pipeline_fusion=False, cache_budget_bytes=0)
    engine.register_dataset(tpch_dataset.tables)
    records = {}
    references = {}
    for query_name in EVALUATED_QUERIES:
        query = build_query(query_name, tpch_dataset)
        references[query_name] = execute_logical(query.plan, engine.catalog)
        for mode in MODES:
            records[(query_name, mode)] = _record(
                engine.execute(query.plan, mode))
    return records, references


@pytest.mark.parametrize("fusion,morsel_rows,workers", CONFIGS)
def test_tpch_grid_is_bit_identical(tpch_dataset, baseline, fusion,
                                    morsel_rows, workers):
    records, references = baseline
    engine = HAPEEngine(default_server(), morsel_rows=morsel_rows,
                        pipeline_fusion=fusion, workers=workers)
    engine.register_dataset(tpch_dataset.tables)
    for query_name in EVALUATED_QUERIES:
        query = build_query(query_name, tpch_dataset)
        for mode in MODES:
            context = (f"{query_name}/{mode} fusion={fusion} "
                       f"morsel_rows={morsel_rows} "
                       f"workers={workers} (resolved={engine.workers})")
            cold = engine.execute(query.plan, mode)
            assert _record(cold) == records[(query_name, mode)], (
                f"{context}: cold run diverged from the canonical baseline")
            warm = engine.execute(query.plan, mode)
            assert _record(warm) == records[(query_name, mode)], (
                f"{context}: warm run diverged from the canonical baseline")
            # Warm runs are functionally served by the session cache:
            # no kernel ran, so no morsels were dispatched — while the
            # records above prove the timings never notice.
            assert warm.morsels_dispatched == 0, (
                f"{context}: warm run dispatched morsels")
            # The engine output also matches the reference oracle row for
            # row — the canonical join output order makes engine results
            # order-identical to the reference, not just set-identical.
            assert cold.table.equals(references[query_name],
                                     check_order=True), (
                f"{context}: engine output diverged from the reference")


class TestFusionKnobSurface:
    def test_default_session_has_fusion_enabled(self):
        assert HAPEEngine(default_server()).pipeline_fusion is True

    def test_knob_is_retunable_and_validated(self):
        engine = HAPEEngine(default_server())
        engine.pipeline_fusion = False
        assert engine.pipeline_fusion is False
        assert engine.executor.options.pipeline_fusion is False
        engine.pipeline_fusion = True
        assert engine.pipeline_fusion is True
        with pytest.raises(ValueError):
            engine.pipeline_fusion = "on"  # type: ignore[assignment]
        with pytest.raises(ValueError):
            HAPEEngine(default_server(), pipeline_fusion=1)  # type: ignore[arg-type]

    def test_toggling_mid_session_never_reuses_wrong_entries(self,
                                                             tpch_dataset):
        """Fused and unfused cache entries are keyed apart: a toggle can
        cause cold misses but never a wrong (differently shaped) reuse."""
        engine = HAPEEngine(default_server())
        engine.register_dataset(tpch_dataset.tables)
        query = build_query("Q5", tpch_dataset)
        fused = engine.execute(query.plan, "hybrid")
        engine.pipeline_fusion = False
        unfused = engine.execute(query.plan, "hybrid")
        engine.pipeline_fusion = True
        refused = engine.execute(query.plan, "hybrid")
        assert fused.simulated_seconds == unfused.simulated_seconds
        assert unfused.simulated_seconds == refused.simulated_seconds
        for name in fused.table.column_names:
            np.testing.assert_array_equal(fused.table.array(name),
                                          unfused.table.array(name))
            np.testing.assert_array_equal(fused.table.array(name),
                                          refused.table.array(name))

    def test_fused_chains_dispatch_fewer_morsels(self, tpch_dataset):
        """Fusion collapses per-node streams into per-chain streams."""
        def run(fusion: bool) -> int:
            engine = HAPEEngine(default_server(), morsel_rows=512,
                                pipeline_fusion=fusion)
            engine.register_dataset(tpch_dataset.tables)
            query = build_query("Q5", tpch_dataset)
            return engine.execute(query.plan, "hybrid").morsels_dispatched
        assert run(True) < run(False)
