"""Engine-wide invariant matrix: (workers × fusion × morsel × warm/cold).

One parametrized grid replaces the ad-hoc identity checks that used to be
scattered across ``test_morsels.py`` (morsel invariance over TPC-H) and
``test_query_cache.py`` (warm-vs-cold TPC-H timings): for **every** TPC-H
workload query in **every** device mode, every configuration of

    workers ∈ {1, 2, "auto"}
  × pipeline_fusion ∈ {off, on}
  × morsel_rows ∈ {None, 977, engine default}
  × cache {cold, warm}

must report bit-identical outputs, bit-identical simulated seconds and
bit-identical execution stats records (per-device busy seconds and
per-link bytes) to the canonical baseline — one worker, fusion off,
whole-column packets, cold.  These knobs tune the *real*
wall-clock/working-set behavior of the engine; nothing the paper's
figures plot may move.  The worker axis is the parallel-execution
determinism contract: worker threads run only pure kernel work, all
merging/accounting happens on the query thread in canonical plan order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import HAPEEngine
from repro.hardware import default_server
from repro.relational import execute_logical
from repro.storage import DEFAULT_MORSEL_ROWS
from repro.workloads import EVALUATED_QUERIES, build_query

MODES = ("cpu", "gpu", "hybrid")
#: Whole-column packets, a non-divisor morsel size, and the default.
MORSEL_SETTINGS = (None, 977, DEFAULT_MORSEL_ROWS)
FUSION_SETTINGS = (False, True)
#: Serial, genuinely threaded, and whatever the host resolves "auto" to.
WORKER_SETTINGS = (1, 2, "auto")

CONFIGS = [
    pytest.param(fusion, morsel_rows, workers,
                 id=(f"fusion={'on' if fusion else 'off'}"
                     f"-morsel={morsel_rows}-workers={workers}"))
    for fusion in FUSION_SETTINGS
    for morsel_rows in MORSEL_SETTINGS
    for workers in WORKER_SETTINGS
]


def _record(result) -> tuple:
    """Everything a configuration must reproduce bit for bit."""
    return (
        result.simulated_seconds,
        tuple(sorted((name, result.table.array(name).tobytes(),
                      str(result.table.array(name).dtype))
                     for name in result.table.column_names)),
        tuple(sorted(result.device_busy.items())),
        tuple(sorted(result.link_bytes.items())),
    )


@pytest.fixture(scope="module")
def baseline(tpch_dataset):
    """Canonical per-(query, mode) records: fusion off, no morsels, cold."""
    engine = HAPEEngine(default_server(), morsel_rows=None,
                        pipeline_fusion=False, cache_budget_bytes=0)
    engine.register_dataset(tpch_dataset.tables)
    records = {}
    references = {}
    for query_name in EVALUATED_QUERIES:
        query = build_query(query_name, tpch_dataset)
        references[query_name] = execute_logical(query.plan, engine.catalog)
        for mode in MODES:
            records[(query_name, mode)] = _record(
                engine.execute(query.plan, mode))
    return records, references


@pytest.mark.parametrize("fusion,morsel_rows,workers", CONFIGS)
def test_tpch_grid_is_bit_identical(tpch_dataset, baseline, fusion,
                                    morsel_rows, workers):
    records, references = baseline
    engine = HAPEEngine(default_server(), morsel_rows=morsel_rows,
                        pipeline_fusion=fusion, workers=workers)
    engine.register_dataset(tpch_dataset.tables)
    for query_name in EVALUATED_QUERIES:
        query = build_query(query_name, tpch_dataset)
        for mode in MODES:
            context = (f"{query_name}/{mode} fusion={fusion} "
                       f"morsel_rows={morsel_rows} "
                       f"workers={workers} (resolved={engine.workers})")
            cold = engine.execute(query.plan, mode)
            assert _record(cold) == records[(query_name, mode)], (
                f"{context}: cold run diverged from the canonical baseline")
            warm = engine.execute(query.plan, mode)
            assert _record(warm) == records[(query_name, mode)], (
                f"{context}: warm run diverged from the canonical baseline")
            # Warm runs are functionally served by the session cache:
            # no kernel ran, so no morsels were dispatched — while the
            # records above prove the timings never notice.
            assert warm.morsels_dispatched == 0, (
                f"{context}: warm run dispatched morsels")
            # The engine output also matches the reference oracle row for
            # row — the canonical join output order makes engine results
            # order-identical to the reference, not just set-identical.
            assert cold.table.equals(references[query_name],
                                     check_order=True), (
                f"{context}: engine output diverged from the reference")


class TestFusionKnobSurface:
    def test_default_session_has_fusion_enabled(self):
        assert HAPEEngine(default_server()).pipeline_fusion is True

    def test_knob_is_retunable_and_validated(self):
        engine = HAPEEngine(default_server())
        engine.pipeline_fusion = False
        assert engine.pipeline_fusion is False
        assert engine.executor.options.pipeline_fusion is False
        engine.pipeline_fusion = True
        assert engine.pipeline_fusion is True
        with pytest.raises(ValueError):
            engine.pipeline_fusion = "on"  # type: ignore[assignment]
        with pytest.raises(ValueError):
            HAPEEngine(default_server(), pipeline_fusion=1)  # type: ignore[arg-type]

    def test_toggling_mid_session_never_reuses_wrong_entries(self,
                                                             tpch_dataset):
        """Fused and unfused cache entries are keyed apart: a toggle can
        cause cold misses but never a wrong (differently shaped) reuse."""
        engine = HAPEEngine(default_server())
        engine.register_dataset(tpch_dataset.tables)
        query = build_query("Q5", tpch_dataset)
        fused = engine.execute(query.plan, "hybrid")
        engine.pipeline_fusion = False
        unfused = engine.execute(query.plan, "hybrid")
        engine.pipeline_fusion = True
        refused = engine.execute(query.plan, "hybrid")
        assert fused.simulated_seconds == unfused.simulated_seconds
        assert unfused.simulated_seconds == refused.simulated_seconds
        for name in fused.table.column_names:
            np.testing.assert_array_equal(fused.table.array(name),
                                          unfused.table.array(name))
            np.testing.assert_array_equal(fused.table.array(name),
                                          refused.table.array(name))

    def test_fused_chains_dispatch_fewer_morsels(self, tpch_dataset):
        """Fusion collapses per-node streams into per-chain streams."""
        def run(fusion: bool) -> int:
            engine = HAPEEngine(default_server(), morsel_rows=512,
                                pipeline_fusion=fusion)
            engine.register_dataset(tpch_dataset.tables)
            query = build_query("Q5", tpch_dataset)
            return engine.execute(query.plan, "hybrid").morsels_dispatched
        assert run(True) < run(False)


# ----------------------------------------------------------------------
# Serving-layer invariance: arrival pattern × workers
# ----------------------------------------------------------------------
#: How the same 12 (query, mode) submissions reach the server: all before
#: run() (the PR 5 drain), as a seeded Poisson stream, or as a recorded
#: trace — open-loop arrivals may only add queue wait, never change what
#: any single query computes or charges.
ARRIVAL_PATTERNS = ("drain", "poisson", "trace")
SERVE_WORKERS = (1, 2)

SERVE_CONFIGS = [
    pytest.param(pattern, workers, id=f"arrivals={pattern}-workers={workers}")
    for pattern in ARRIVAL_PATTERNS
    for workers in SERVE_WORKERS
]


@pytest.mark.parametrize("pattern,workers", SERVE_CONFIGS)
def test_served_grid_is_bit_identical(tpch_dataset, baseline, pattern,
                                      workers):
    """Every served query's record matches the canonical solo baseline,
    however it arrived and however many dispatch workers ran."""
    from repro.server import Arrival, QueryServer, trace_arrivals

    records, _ = baseline
    server = QueryServer(default_server(), workers=workers,
                         preemption=True, aging_seconds=2e-4)
    server.register_dataset(tpch_dataset.tables)
    tenants = ("inter", "norm", "batch")
    server.open_session("inter", priority="interactive", max_concurrency=2)
    server.open_session("norm", priority="normal", max_concurrency=2)
    server.open_session("batch", priority="batch", max_concurrency=2)
    jobs = []
    for index, query_name in enumerate(EVALUATED_QUERIES):
        plan = build_query(query_name, tpch_dataset).plan
        for offset, mode in enumerate(MODES):
            tenant = tenants[(index + offset) % len(tenants)]
            label = f"{query_name}/{mode}"
            jobs.append((tenant, plan, mode, label, (query_name, mode)))

    if pattern == "drain":
        for tenant, plan, mode, label, _ in jobs:
            server.submit(tenant, plan, mode, label=label)
    elif pattern == "poisson":
        rng = np.random.default_rng(20260808)
        arrivals: dict[str, list] = {tenant: [] for tenant in tenants}
        at = 0.0
        for tenant, plan, mode, label, _ in jobs:
            at += float(rng.exponential(3e-5))
            arrivals[tenant].append(Arrival(at=at, tenant=tenant, plan=plan,
                                            mode=mode, label=label))
        for tenant in tenants:
            server.add_arrivals(arrivals[tenant])
    else:
        for tenant in tenants:
            trace = [(index * 2e-5, plan, mode)
                     for index, (job_tenant, plan, mode, _, _)
                     in enumerate(jobs) if job_tenant == tenant]
            server.add_arrivals(trace_arrivals(tenant, trace))

    report = server.run()
    assert report.completed == len(jobs)
    for ticket in report.tickets:
        if pattern == "trace":
            # trace_arrivals assigns its own tenant-indexed labels; map
            # the ticket back through its plan and mode instead.
            key = next((query_name, mode)
                       for _, plan, mode, _, (query_name, _) in jobs
                       if plan is ticket.plan and mode == ticket.mode)
        else:
            key = next(job_key for _, _, _, label, job_key in jobs
                       if label == ticket.label)
        context = (f"{key[0]}/{key[1]} arrivals={pattern} workers={workers} "
                   f"tenant={ticket.tenant}")
        assert _record(ticket.result) == records[key], (
            f"{context}: served record diverged from the solo baseline")
        assert ticket.start_time >= ticket.submit_time, (
            f"{context}: query started before it arrived")
