"""Tests for device specifications."""

from __future__ import annotations

import pytest

from repro.hardware import (
    CacheSpec,
    DeviceKind,
    LinkSpec,
    ScratchpadSpec,
    TLBSpec,
    gtx_1080,
    pcie3_x16,
    qpi_link,
    xeon_e5_2650l_v3,
)

GIB = 1024 ** 3


class TestDeviceSpecs:
    def test_cpu_spec_matches_paper_testbed(self):
        spec = xeon_e5_2650l_v3()
        assert spec.kind is DeviceKind.CPU
        assert spec.compute_units == 12
        assert spec.clock_ghz == pytest.approx(1.8)
        assert spec.cache("L1").capacity_bytes == 64 * 1024
        assert spec.cache("L2").capacity_bytes == 256 * 1024
        assert spec.cache("L3").capacity_bytes == 30 * 1024 ** 2
        assert spec.scratchpad is None

    def test_gpu_spec_matches_paper_testbed(self):
        spec = gtx_1080()
        assert spec.kind is DeviceKind.GPU
        assert spec.memory_capacity_bytes == 8 * GIB
        assert spec.memory_bandwidth_gib_s == pytest.approx(280.0)
        assert spec.scratchpad is not None
        assert spec.scratchpad.capacity_bytes == 96 * 1024
        assert spec.kernel_launch_us > 0

    def test_cache_lookup_is_case_insensitive(self):
        spec = xeon_e5_2650l_v3()
        assert spec.cache("l3") is spec.cache("L3")

    def test_unknown_cache_level_raises(self):
        with pytest.raises(KeyError):
            xeon_e5_2650l_v3().cache("L4")

    def test_last_level_cache_is_largest(self):
        spec = xeon_e5_2650l_v3()
        assert spec.last_level_cache.name == "L3"

    def test_total_threads(self):
        assert xeon_e5_2650l_v3().total_threads == 24
        assert gtx_1080().total_threads == 20 * 2048

    def test_with_memory_capacity_returns_copy(self):
        spec = gtx_1080()
        bigger = spec.with_memory_capacity(16 * GIB)
        assert bigger.memory_capacity_bytes == 16 * GIB
        assert spec.memory_capacity_bytes == 8 * GIB

    def test_gpu_without_scratchpad_rejected(self):
        spec = gtx_1080()
        with pytest.raises(ValueError):
            type(spec)(**{**spec.__dict__, "scratchpad": None})


class TestComponentSpecs:
    def test_tlb_reach(self):
        tlb = TLBSpec(entries=64, page_bytes=2 * 1024 ** 2, miss_penalty_ns=30)
        assert tlb.reach_bytes == 128 * 1024 ** 2

    def test_invalid_cache_rejected(self):
        with pytest.raises(ValueError):
            CacheSpec("L1", 0, 64, 100.0, 1.0)
        with pytest.raises(ValueError):
            CacheSpec("L1", 1024, -1, 100.0, 1.0)

    def test_invalid_tlb_rejected(self):
        with pytest.raises(ValueError):
            TLBSpec(entries=0, page_bytes=4096, miss_penalty_ns=10)

    def test_invalid_scratchpad_rejected(self):
        with pytest.raises(ValueError):
            ScratchpadSpec(0, 32, 4, 9000.0, 20.0)

    def test_link_specs(self):
        pcie = pcie3_x16()
        qpi = qpi_link()
        assert pcie.bandwidth_gib_s < qpi.bandwidth_gib_s * 3
        assert pcie.latency_us > qpi.latency_us
        with pytest.raises(ValueError):
            LinkSpec("bad", bandwidth_gib_s=0.0, latency_us=1.0)
        with pytest.raises(ValueError):
            LinkSpec("bad", bandwidth_gib_s=1.0, latency_us=-1.0)
