"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the tests without installing the package (offline CI).
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.engine import HAPEEngine  # noqa: E402
from repro.hardware import default_server  # noqa: E402
from repro.storage import generate_tpch, make_join_pair  # noqa: E402


@pytest.fixture
def topology():
    """The paper's testbed: 2 CPU sockets + 2 GPUs."""
    return default_server()


@pytest.fixture
def cpu(topology):
    return topology.device("cpu0")


@pytest.fixture
def gpu(topology):
    return topology.device("gpu0")


@pytest.fixture(scope="session")
def tpch_dataset():
    """A small but non-trivial TPC-H dataset shared by the suite."""
    return generate_tpch(scale_factor=0.005, seed=7)


@pytest.fixture
def engine(tpch_dataset):
    """A HAPE engine with the TPC-H tables registered."""
    engine = HAPEEngine(default_server())
    engine.register_dataset(tpch_dataset.tables)
    return engine


@pytest.fixture(scope="session")
def join_workload():
    """The microbenchmark workload: two 5000-tuple tables, identical keys."""
    return make_join_pair(5_000, seed=3)
