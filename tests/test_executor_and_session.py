"""Tests for the executor internals, the engine facade and the OpCost type."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import ExecutorOptions, HAPEEngine, Optimizer, OptimizerOptions
from repro.hardware import DeviceKind, default_server
from repro.operators import OpCost
from repro.relational import RoutingPolicy, agg_sum, col, lit, scan
from repro.storage import Table, generate_tpch
from repro.workloads import build_query


class TestOpCost:
    def test_add_and_merge(self):
        cost = OpCost().add("scan", 1.0).add("probe", 2.0)
        other = OpCost().add("scan", 0.5)
        cost.merge(other)
        assert cost.seconds == pytest.approx(3.5)
        assert cost.breakdown["scan"] == pytest.approx(1.5)

    def test_scaled(self):
        cost = OpCost().add("scan", 2.0).add("probe", 4.0)
        half = cost.scaled(0.5)
        assert half.seconds == pytest.approx(3.0)
        assert cost.seconds == pytest.approx(6.0)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            OpCost().add("x", -1.0)
        with pytest.raises(ValueError):
            OpCost().scaled(-0.1)


class TestExecutorBehaviour:
    def test_hybrid_overhead_option_slows_hybrid_runs(self, tpch_dataset):
        query = build_query("Q1", tpch_dataset)
        cheap = HAPEEngine(default_server(),
                           executor_options=ExecutorOptions(hybrid_overhead=0.0))
        cheap.register_dataset(tpch_dataset.tables)
        expensive = HAPEEngine(default_server(),
                               executor_options=ExecutorOptions(hybrid_overhead=0.8))
        expensive.register_dataset(tpch_dataset.tables)
        fast = cheap.execute(query.plan, "hybrid").simulated_seconds
        slow = expensive.execute(query.plan, "hybrid").simulated_seconds
        assert slow > fast

    def test_consecutive_queries_reset_the_timeline(self, engine, tpch_dataset):
        query = build_query("Q6", tpch_dataset)
        first = engine.execute(query.plan, "hybrid").simulated_seconds
        second = engine.execute(query.plan, "hybrid").simulated_seconds
        assert second == pytest.approx(first, rel=1e-6)

    def test_link_bytes_accounted_per_link(self, engine, tpch_dataset):
        result = engine.execute(build_query("Q1", tpch_dataset).plan, "gpu")
        assert result.link_bytes.get("pcie0", 0) > 0
        assert result.link_bytes.get("pcie1", 0) > 0

    def test_busy_fraction_bounded(self, engine, tpch_dataset):
        result = engine.execute(build_query("Q5", tpch_dataset).plan, "hybrid")
        for resource in result.device_busy:
            assert 0.0 <= result.busy_fraction(resource) <= 1.0 + 1e-9

    def test_execution_result_utilization_helper(self, engine, tpch_dataset):
        result = engine.executor.execute(
            engine.plan(build_query("Q6", tpch_dataset).plan, "cpu"))
        assert 0.0 <= result.utilization("cpu0") <= 1.0


class TestEngineFacade:
    def test_register_table_and_replace(self):
        engine = HAPEEngine(default_server())
        table = Table.from_arrays("t", {"a": np.arange(5)})
        engine.register_table(table)
        with pytest.raises(Exception):
            engine.register_table(table)
        engine.register_table(table, replace=True)
        plan = scan("t").aggregate([], [agg_sum(col("a"), "s")])
        assert engine.execute(plan, "cpu").table.array("s")[0] == 10

    def test_default_topology_is_paper_testbed(self):
        engine = HAPEEngine()
        assert len(engine.topology.cpus()) == 2
        assert len(engine.topology.gpus()) == 2

    def test_plan_and_pipelines_exposed_in_result(self, engine, tpch_dataset):
        result = engine.execute(build_query("Q6", tpch_dataset).plan, "hybrid")
        assert result.physical_plan is not None
        assert len(result.pipelines) >= 2
        assert result.mode.value == "hybrid"


class TestOptimizerOptions:
    def test_routing_policy_option_is_used(self, tpch_dataset):
        engine = HAPEEngine(
            default_server(),
            optimizer_options=OptimizerOptions(
                routing_policy=RoutingPolicy.LOCALITY_AWARE))
        engine.register_dataset(tpch_dataset.tables)
        physical = engine.plan(build_query("Q6", tpch_dataset).plan, "cpu")
        routers = [node for node in physical.walk()
                   if type(node).__name__ == "Router"]
        assert any(router.policy is RoutingPolicy.LOCALITY_AWARE
                   for router in routers)

    def test_estimate_rows_discounts_filters(self, engine):
        optimizer: Optimizer = engine.optimizer
        base = optimizer._estimate_rows(scan("lineitem"))
        filtered = optimizer._estimate_rows(
            scan("lineitem").filter(col("l_quantity") < lit(10.0)))
        assert filtered < base

    def test_gpu_only_rejects_oversized_builds(self, tpch_dataset):
        from repro.errors import OptimizerError
        from repro.hardware import gtx_1080
        tiny_gpu = gtx_1080().with_memory_capacity(64 * 1024)
        topology = default_server(gpu_spec=tiny_gpu)
        engine = HAPEEngine(topology)
        engine.register_dataset(tpch_dataset.tables)
        plan = scan("orders").join(
            scan("lineitem", ["l_orderkey", "l_extendedprice"]),
            ["o_orderkey"], ["l_orderkey"]).aggregate(
                [], [agg_sum(col("l_extendedprice"), "s")])
        with pytest.raises(OptimizerError):
            engine.plan(plan, "gpu")
