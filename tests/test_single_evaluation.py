"""The single-evaluation operator contract, end to end.

Asserts the kernel/estimate split introduced by the single-evaluation
refactor: every operator's functional kernel runs exactly once per plan
node (even when a hybrid pipeline costs the work on several device kinds),
repeated subplans are evaluated once per query, and the engine's results
stay equal to the reference executor across every TPC-H workload query and
execution mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.operators import (
    composite_key,
    kernel_counts,
    radix_partition,
    reset_kernel_counts,
)
from repro.relational import (
    JoinAlgorithm,
    PAggregate,
    PFilterProject,
    PJoin,
    agg_count,
    agg_sum,
    col,
    execute_logical,
    fold_keys,
    join_indices,
    join_indices_dict,
    lit,
    scan,
)
from repro.workloads import EVALUATED_QUERIES, build_query

MODES = ("cpu", "gpu", "hybrid")

#: Maps a PJoin algorithm to the kernel-counter key its execution bumps.
_JOIN_KERNELS = {
    JoinAlgorithm.NON_PARTITIONED: "hash_join",
    JoinAlgorithm.RADIX_CPU: "cpu_radix_join",
    JoinAlgorithm.RADIX_GPU: "gpu_partitioned_join",
    JoinAlgorithm.COPROCESSED_RADIX: "coprocessed_radix_join",
}


def _expected_kernel_counts(physical) -> dict[str, int]:
    """How often each kernel must run for a plan with distinct subtrees."""
    expected: dict[str, int] = {}

    def bump(name: str, by: int = 1) -> None:
        expected[name] = expected.get(name, 0) + by

    for node in physical.walk():
        if isinstance(node, PFilterProject):
            bump("filter_project")
        elif isinstance(node, PAggregate):
            bump("merge_partials" if node.phase == "final"
                 else "hash_aggregate")
        elif isinstance(node, PJoin):
            bump(_JOIN_KERNELS[node.algorithm])
    return expected


class TestKernelRunsOncePerPlanNode:
    @pytest.mark.parametrize("query_name", EVALUATED_QUERIES)
    @pytest.mark.parametrize("mode", MODES)
    def test_tpch_counts_match_plan_nodes(self, engine, tpch_dataset,
                                          query_name, mode):
        query = build_query(query_name, tpch_dataset)
        physical = engine.plan(query.plan, mode)
        expected = _expected_kernel_counts(physical)
        # The co-processed join drives the partition/GPU-join kernels
        # internally with data-dependent fan-outs; pin counts only for
        # plans made of single-device operators.
        assume_exact = "coprocessed_radix_join" not in expected
        reset_kernel_counts()
        engine.executor.execute(physical)
        counts = kernel_counts()
        if assume_exact:
            for kernel in ("filter_project", "hash_aggregate",
                           "merge_partials", "hash_join", "cpu_radix_join",
                           "gpu_partitioned_join"):
                assert counts.get(kernel, 0) == expected.get(kernel, 0), (
                    f"{query_name}/{mode}: kernel {kernel} ran "
                    f"{counts.get(kernel, 0)}x, expected "
                    f"{expected.get(kernel, 0)}x")
        else:
            for kernel in ("filter_project", "hash_aggregate",
                           "merge_partials"):
                assert counts.get(kernel, 0) == expected.get(kernel, 0)

    def test_hybrid_join_kernel_not_duplicated_per_kind(self, engine,
                                                        tpch_dataset):
        """A hybrid pipeline costs CPU+GPU kinds but evaluates once."""
        query = build_query("Q5", tpch_dataset)
        physical = engine.plan(query.plan, "hybrid")
        join_nodes = [node for node in physical.walk()
                      if isinstance(node, PJoin)
                      and node.algorithm is JoinAlgorithm.NON_PARTITIONED]
        reset_kernel_counts()
        result = engine.executor.execute(physical)
        assert kernel_counts().get("hash_join", 0) == len(join_nodes)
        assert result.simulated_seconds > 0.0

    def test_repeated_subplan_evaluated_once(self, engine):
        """Structurally identical subtrees share one kernel evaluation."""
        side_a = scan("supplier", ["s_suppkey", "s_nationkey"]).filter(
            col("s_nationkey") >= lit(0))
        side_b = scan("supplier", ["s_suppkey", "s_nationkey"]).filter(
            col("s_nationkey") >= lit(0))
        plan = side_a.join(side_b, ["s_suppkey"], ["s_suppkey"])
        reference = execute_logical(plan, engine.catalog)
        reset_kernel_counts()
        result = engine.execute(plan, "cpu")
        counts = kernel_counts()
        # Two identical PFilterProject nodes, one functional evaluation.
        assert counts.get("filter_project", 0) == 1
        assert result.table.num_rows == reference.num_rows

    def test_memoization_does_not_change_simulated_time(self, engine,
                                                        tpch_dataset):
        """Kernels are cached, costs are not: timings stay reproducible."""
        query = build_query("Q5", tpch_dataset)
        first = engine.execute(query.plan, "hybrid").simulated_seconds
        second = engine.execute(query.plan, "hybrid").simulated_seconds
        assert first == second


class TestEngineMatchesReference:
    @pytest.mark.parametrize("query_name", EVALUATED_QUERIES)
    @pytest.mark.parametrize("mode", MODES)
    def test_all_queries_all_modes(self, engine, tpch_dataset,
                                   query_name, mode):
        query = build_query(query_name, tpch_dataset)
        reference = execute_logical(query.plan, engine.catalog)
        result = engine.execute(query.plan, mode)
        assert result.table.equals(reference, check_order=False)

    @pytest.mark.parametrize("mode", MODES)
    def test_group_by_over_empty_input_matches_reference(self, engine, mode):
        """A filter that removes every row: dtypes must match the reference."""
        plan = (scan("supplier", ["s_suppkey", "s_nationkey"])
                .filter(col("s_nationkey") < lit(-1))
                .aggregate(["s_nationkey"],
                           [agg_sum(col("s_suppkey"), "total"),
                            agg_count("cnt")]))
        reference = execute_logical(plan, engine.catalog)
        result = engine.execute(plan, mode)
        assert result.table.num_rows == 0
        assert result.table.equals(reference, check_order=False)


class TestVectorizedReferenceJoin:
    def _random_keys(self, rng, size, domain):
        return rng.integers(0, domain, size=size, dtype=np.int64)

    @pytest.mark.parametrize("left_size,right_size,domain", [
        (0, 10, 5), (10, 0, 5), (1, 1, 1), (50, 80, 10),
        (200, 300, 40), (64, 64, 1_000_000),
    ])
    def test_matches_dict_oracle(self, left_size, right_size, domain):
        rng = np.random.default_rng(left_size * 1000 + right_size + domain)
        left = [self._random_keys(rng, left_size, domain)]
        right = [self._random_keys(rng, right_size, domain)]
        got = join_indices(left, right)
        oracle = join_indices_dict(left, right)
        np.testing.assert_array_equal(got[0], oracle[0])
        np.testing.assert_array_equal(got[1], oracle[1])

    def test_multi_key_matches_dict_oracle(self):
        rng = np.random.default_rng(11)
        left = [rng.integers(0, 6, 40, dtype=np.int64),
                rng.integers(0, 4, 40, dtype=np.int64)]
        right = [rng.integers(0, 6, 70, dtype=np.int64),
                 rng.integers(0, 4, 70, dtype=np.int64)]
        got = join_indices(left, right)
        oracle = join_indices_dict(left, right)
        np.testing.assert_array_equal(got[0], oracle[0])
        np.testing.assert_array_equal(got[1], oracle[1])

    def test_unique_key_fast_path_matches_duplicate_path(self):
        # Unique build keys take the single-searchsorted fast path; the
        # pair list must be identical to the general (duplicate) path.
        build = np.asarray([7, 3, 9, 1], dtype=np.int64)
        probe = np.asarray([9, 9, 2, 3, 1], dtype=np.int64)
        got = join_indices([build], [probe])
        oracle = join_indices_dict([build], [probe])
        np.testing.assert_array_equal(got[0], oracle[0])
        np.testing.assert_array_equal(got[1], oracle[1])


class TestSharedKeyFold:
    def test_operators_and_reference_fold_agree(self):
        columns = {
            "a": np.asarray([1, 2, 3, 4], dtype=np.int64),
            "b": np.asarray([10, 20, 30, 40], dtype=np.int64),
        }
        folded = composite_key(columns, ["a", "b"])
        np.testing.assert_array_equal(folded, fold_keys([columns["a"],
                                                         columns["b"]]))

    def test_single_key_is_identity(self):
        values = np.asarray([5, -3, 2**40], dtype=np.int64)
        np.testing.assert_array_equal(fold_keys([values]), values)

    def test_overflow_wraps_without_warning(self):
        huge = np.asarray([2**62, -(2**62), 2**63 - 1], dtype=np.int64)
        with np.errstate(over="raise"):
            folded = fold_keys([huge, huge])
        # Matches explicit two's-complement modular arithmetic.
        expected = (huge.astype(np.uint64) * np.uint64(1_000_003)
                    + huge.astype(np.uint64)).view(np.int64)
        np.testing.assert_array_equal(folded, expected)

    def test_empty_key_list_needs_num_rows(self):
        np.testing.assert_array_equal(fold_keys([], num_rows=3),
                                      np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError):
            fold_keys([])


class TestSingleGatherPartition:
    def test_partitions_match_boolean_mask_reference(self, cpu):
        rng = np.random.default_rng(5)
        columns = {
            "key": rng.integers(0, 1_000, 5_000, dtype=np.int64),
            "payload": rng.integers(0, 100, 5_000, dtype=np.int64),
        }
        fanout = 7
        partitions, cost = radix_partition(columns, cpu, key="key",
                                           fanout=fanout)
        assert cost.seconds > 0
        assert len(partitions) == fanout
        total = 0
        for index, part in enumerate(partitions):
            mask = columns["key"] % fanout == index
            # Same rows, same (stable) order as a boolean-mask scan.
            np.testing.assert_array_equal(part["key"], columns["key"][mask])
            np.testing.assert_array_equal(part["payload"],
                                          columns["payload"][mask])
            total += len(part["key"])
        assert total == len(columns["key"])
