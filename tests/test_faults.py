"""Tests for fault injection, failover and resilient serving.

Covers the contracts of ``docs/FAULTS.md``:

* device health states live outside the per-query reset path and gate
  optimizer placement, executor fallbacks and scheduler reservations;
* :class:`~repro.faults.FaultPlan` / :class:`~repro.faults.FaultInjector`
  replay deterministically and are epoch-scoped;
* the server isolates per-query failures (``failed`` / ``timed_out``
  tickets instead of a crashed epoch), retries transient faults with
  simulated backoff, walks the gpu → hybrid → cpu degradation ladder on
  device-scoped failures, and enforces per-query deadlines;
* the paper's Q9 failure mode (:class:`OutOfDeviceMemoryError`,
  Section 6.4) degrades to a surviving mode with reference-identical
  results;
* accounting: wasted simulated seconds, retries and failovers are
  reported per ticket and per tenant;
* an empty :class:`FaultPlan` leaves the server bit-identical to the
  fault-free serving layer, and ``run()`` is exception-safe.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import HAPEEngine
from repro.errors import (
    DeviceUnavailableError,
    FaultError,
    OutOfDeviceMemoryError,
    QueryTimeoutError,
    RetryExhaustedError,
    ReproError,
    ServingError,
)
from repro.faults import CircuitBreaker, FaultInjector, FaultPlan
from repro.hardware import DeviceHealth, default_server, gtx_1080
from repro.relational import agg_count, agg_sum, col, lit, scan
from repro.server import QueryServer, RetryPolicy
from repro.storage import Table


def _table_bytes(result_table) -> tuple:
    return tuple(sorted(
        (name, result_table.array(name).tobytes(),
         str(result_table.array(name).dtype))
        for name in result_table.column_names))


def _small_tables(seed: int = 5) -> dict[str, Table]:
    rng = np.random.default_rng(seed)
    return {
        "tx": Table.from_arrays("tx", {
            "xk": rng.integers(0, 5, 64, dtype=np.int64),
            "xv": rng.integers(0, 100, 64, dtype=np.int64),
        }),
        "ty": Table.from_arrays("ty", {
            "yk": rng.integers(0, 5, 48, dtype=np.int64),
            "yv": rng.integers(0, 100, 48, dtype=np.int64),
        }),
    }


def _plan_x():
    return (scan("tx").filter(col("xv") < lit(90))
            .aggregate(["xk"], [agg_count("cnt"), agg_sum(col("xv"), "s")]))


def _plan_y():
    return (scan("ty")
            .aggregate(["yk"], [agg_count("cnt"), agg_sum(col("yv"), "s")]))


# ----------------------------------------------------------------------
# Hardware health states
# ----------------------------------------------------------------------
class TestDeviceHealth:
    def test_health_transitions_and_availability(self):
        topology = default_server()
        gpu0 = topology.device("gpu0")
        assert gpu0.health is DeviceHealth.HEALTHY and gpu0.is_available
        topology.fail_device("gpu0")
        assert gpu0.health is DeviceHealth.FAILED and not gpu0.is_available
        assert [d.name for d in topology.available_gpus()] == ["gpu1"]
        topology.degrade_device("gpu0")
        assert gpu0.health is DeviceHealth.DEGRADED and gpu0.is_available
        topology.restore_device("gpu0")
        assert gpu0.health is DeviceHealth.HEALTHY
        assert topology.health_report() == {
            name: "healthy" for name in ("cpu0", "cpu1", "gpu0", "gpu1")}

    def test_health_survives_topology_reset(self):
        # The executor resets clocks before every execution; a failed GPU
        # must stay failed across that reset.
        topology = default_server()
        topology.fail_device("gpu1")
        topology.reset()
        assert not topology.device("gpu1").is_available
        topology.reset_health()
        assert topology.device("gpu1").is_available

    def test_memory_shrink_and_restore(self):
        topology = default_server()
        gpu = topology.device("gpu0")
        nominal = gpu.spec.memory_capacity_bytes
        topology.shrink_device_memory("gpu0", 0.25)
        assert gpu.spec.memory_capacity_bytes == nominal // 4
        assert gpu.memory.capacity_bytes == nominal // 4
        with pytest.raises(OutOfDeviceMemoryError):
            gpu.allocate(nominal // 2)
        topology.restore_device_memory("gpu0")
        assert gpu.spec.memory_capacity_bytes == nominal
        with pytest.raises(ValueError, match="factor"):
            gpu.shrink_memory(0.0)

    def test_link_degradation_slows_transfers_and_restores(self):
        topology = default_server()
        link = topology.link("pcie0")
        healthy = link.transfer_time(1 << 20)
        topology.degrade_link("pcie0", 0.25)
        assert link.transfer_time(1 << 20) > healthy
        topology.restore_link("pcie0")
        assert link.transfer_time(1 << 20) == healthy
        with pytest.raises(ValueError, match="factor"):
            link.degrade(1.5)

    def test_degraded_link_slows_gpu_queries_then_restores(self, tpch_dataset):
        plan = (scan("lineitem", ["l_orderkey", "l_extendedprice"])
                .aggregate(["l_orderkey"],
                           [agg_sum(col("l_extendedprice"), "s")]))
        topology = default_server()
        engine = HAPEEngine(topology)
        engine.register_dataset(tpch_dataset.tables)
        healthy = engine.execute(plan, "gpu")
        topology.degrade_link("pcie0", 0.1)
        topology.degrade_link("pcie1", 0.1)
        degraded = engine.execute(plan, "gpu")
        assert degraded.simulated_seconds > healthy.simulated_seconds
        assert _table_bytes(degraded.table) == _table_bytes(healthy.table)
        topology.reset_health()
        restored = engine.execute(plan, "gpu")
        assert restored.simulated_seconds == healthy.simulated_seconds


# ----------------------------------------------------------------------
# Health-aware planning and execution
# ----------------------------------------------------------------------
class TestHealthAwarePlacement:
    def test_gpu_mode_with_all_gpus_failed_raises_fault(self, tpch_dataset):
        topology = default_server()
        engine = HAPEEngine(topology)
        engine.register_dataset(tpch_dataset.tables)
        topology.fail_device("gpu0")
        topology.fail_device("gpu1")
        with pytest.raises(DeviceUnavailableError, match="gpu"):
            engine.execute(_q1_like(tpch_dataset), "gpu")
        with pytest.raises(DeviceUnavailableError, match="gpu"):
            engine.execute(_q1_like(tpch_dataset), "hybrid")

    def test_degraded_parallelism_is_functionally_identical(self,
                                                            tpch_dataset):
        plan = _q1_like(tpch_dataset)
        healthy_engine = HAPEEngine(default_server())
        healthy_engine.register_dataset(tpch_dataset.tables)
        reference = healthy_engine.execute(plan, "gpu")

        topology = default_server()
        engine = HAPEEngine(topology)
        engine.register_dataset(tpch_dataset.tables)
        topology.fail_device("gpu1")
        survived = engine.execute(plan, "gpu")
        assert _table_bytes(survived.table) == _table_bytes(reference.table)
        assert "gpu1" not in survived.device_busy or \
            survived.device_busy.get("gpu1", 0.0) == 0.0

    def test_cpu_anchor_moves_off_failed_socket(self, tpch_dataset):
        plan = _q1_like(tpch_dataset)
        healthy_engine = HAPEEngine(default_server())
        healthy_engine.register_dataset(tpch_dataset.tables)
        reference = healthy_engine.execute(plan, "cpu")

        topology = default_server()
        engine = HAPEEngine(topology)
        engine.register_dataset(tpch_dataset.tables)
        topology.fail_device("cpu0")
        survived = engine.execute(plan, "cpu")
        assert _table_bytes(survived.table) == _table_bytes(reference.table)
        assert survived.device_busy.get("cpu0", 0.0) == 0.0


def _q1_like(tpch_dataset):
    return (scan("lineitem", ["l_orderkey", "l_extendedprice"])
            .aggregate(["l_orderkey"],
                       [agg_sum(col("l_extendedprice"), "s")]))


# ----------------------------------------------------------------------
# FaultPlan / FaultInjector
# ----------------------------------------------------------------------
class TestFaultPlanAndInjector:
    def test_plan_builder_and_validation(self):
        plan = (FaultPlan(seed=13)
                .fail_device("gpu0", at=0.5, recover_at=2.0)
                .degrade_link("pcie1", at=0.5, factor=0.25)
                .shrink_device_memory("gpu1", at=1.0, factor=0.5)
                .transient_errors(rate=0.1, labels=("Q1",))
                .fail_attempt("Q5", attempt=2, device="gpu0"))
        assert not plan.empty
        assert "gpu0" in plan.describe() and "transient" in plan.describe()
        assert FaultPlan().empty
        assert FaultPlan().describe() == "FaultPlan(empty)"
        with pytest.raises(ValueError, match="recovery"):
            FaultPlan().fail_device("gpu0", at=1.0, recover_at=0.5)
        with pytest.raises(ValueError, match="factor"):
            FaultPlan().degrade_link("pcie0", at=0.0, factor=0.0)
        with pytest.raises(ValueError, match="rate"):
            FaultPlan().transient_errors(rate=1.5)
        with pytest.raises(ValueError, match="kind"):
            from repro.faults import FaultEvent
            FaultEvent(kind="meteor", target="gpu0", at=0.0)

    def test_injector_timeline_apply_and_restore(self):
        topology = default_server()
        plan = (FaultPlan()
                .fail_device("gpu0", at=1.0, recover_at=2.0)
                .shrink_device_memory("gpu1", at=1.0, factor=0.5))
        injector = FaultInjector(plan, topology)
        assert injector.next_event_time(0.0) == 1.0
        assert injector.advance(0.5) == []
        assert injector.advance(1.0) == ["gpu0"]
        assert not topology.device("gpu0").is_available
        assert topology.device("gpu1").memory.capacity_bytes < \
            gtx_1080().memory_capacity_bytes
        assert injector.next_event_time(1.0) == 2.0
        assert injector.advance(2.0) == []  # recovery, not a new failure
        assert topology.device("gpu0").is_available
        # Epoch teardown undoes what the plan never restored.
        injector.restore_all()
        assert topology.device("gpu1").memory.capacity_bytes == \
            gtx_1080().memory_capacity_bytes

    def test_attempt_faults_are_seed_deterministic(self):
        def draws(seed):
            injector = FaultInjector(
                FaultPlan(seed=seed).transient_errors(rate=0.5),
                default_server())
            return [injector.attempt_fault("t", f"q{i}", 1) is not None
                    for i in range(32)]

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)
        assert any(draws(7)) and not all(draws(7))

    def test_targeted_fault_hits_exact_attempt(self):
        injector = FaultInjector(
            FaultPlan().fail_attempt("q", attempt=2, device="gpu0"),
            default_server())
        assert injector.attempt_fault("t", "q", 1) is None
        fault = injector.attempt_fault("t", "q", 2)
        assert fault is not None and fault.kind == "device"
        assert fault.device == "gpu0"
        assert injector.attempt_fault("t", "other", 2) is None


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_trips_after_threshold_and_probes_recovery(self):
        topology = default_server()
        breaker = CircuitBreaker(topology, threshold=3, cooldown_seconds=1.0)
        assert not breaker.record_failure("gpu0", now=0.0)
        assert not breaker.record_failure("gpu0", now=0.1)
        assert breaker.record_failure("gpu0", now=0.2)
        assert not topology.device("gpu0").is_available
        assert breaker.trips == 1
        assert breaker.next_probe_time(0.2) == pytest.approx(1.2)
        assert breaker.advance(1.2) == ["gpu0"]
        assert topology.device("gpu0").health is DeviceHealth.DEGRADED
        breaker.record_success(["gpu0"])
        assert topology.device("gpu0").health is DeviceHealth.HEALTHY

    def test_success_resets_consecutive_count(self):
        topology = default_server()
        breaker = CircuitBreaker(topology, threshold=2, cooldown_seconds=1.0)
        breaker.record_failure("gpu0", now=0.0)
        breaker.record_success(["gpu0"])
        assert not breaker.record_failure("gpu0", now=0.2)
        assert topology.device("gpu0").is_available

    def test_restore_all_only_touches_own_trips(self):
        topology = default_server()
        topology.fail_device("gpu1")  # failed by someone else
        breaker = CircuitBreaker(topology, threshold=1, cooldown_seconds=1.0)
        breaker.record_failure("gpu0", now=0.0)
        breaker.restore_all()
        assert topology.device("gpu0").is_available
        assert not topology.device("gpu1").is_available

    def test_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(default_server(), threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(default_server(), cooldown_seconds=0.0)


# ----------------------------------------------------------------------
# Resilient serving: retries
# ----------------------------------------------------------------------
class TestRetries:
    def test_transient_fault_is_retried_and_completes(self):
        plan = FaultPlan().fail_attempt("flaky", attempt=1, fraction=0.5)
        server = QueryServer(default_server(), fault_plan=plan,
                             cache_budget_bytes=0)
        server.register_dataset(_small_tables())
        ticket = server.submit("t", _plan_x(), "cpu", label="flaky")
        report = server.run()
        assert ticket.status == "completed"
        assert ticket.attempts == 2 and ticket.retries == 1
        assert ticket.failovers == 0
        assert ticket.wasted_seconds > 0.0
        assert report.retries == 1
        assert report.tenants["t"].retries == 1
        assert report.tenants["t"].wasted_seconds == ticket.wasted_seconds

        # The successful attempt is bit-identical to a solo fault-free run.
        solo = HAPEEngine(default_server())
        solo.register_dataset(_small_tables())
        reference = solo.execute(_plan_x(), "cpu")
        assert ticket.result.simulated_seconds == reference.simulated_seconds
        assert _table_bytes(ticket.result.table) == \
            _table_bytes(reference.table)

    def test_backoff_is_charged_as_queue_wait(self):
        policy = RetryPolicy(max_attempts=3, backoff_seconds=0.25,
                             backoff_multiplier=2.0)
        plan = FaultPlan().fail_attempt("flaky", attempt=1, fraction=0.5)
        server = QueryServer(default_server(), fault_plan=plan,
                             retry_policy=policy, cache_budget_bytes=0)
        server.register_dataset(_small_tables())
        ticket = server.submit("t", _plan_x(), "cpu", label="flaky")
        server.run()
        assert ticket.status == "completed"
        # Attempt 1 died, backoff(1)=0.25s sat in the queue, attempt 2 ran.
        assert ticket.queue_wait >= 0.25
        assert ticket.latency == pytest.approx(
            ticket.queue_wait + ticket.result.simulated_seconds)

    def test_retry_budget_exhaustion_fails_cleanly(self):
        plan = FaultPlan().transient_errors(rate=1.0, fraction=0.25,
                                            labels=("doomed",))
        server = QueryServer(
            default_server(), fault_plan=plan, cache_budget_bytes=0,
            retry_policy=RetryPolicy(max_attempts=3, backoff_seconds=0.01))
        server.register_dataset(_small_tables())
        doomed = server.submit("t", _plan_x(), "cpu", label="doomed")
        healthy = server.submit("t", _plan_y(), "cpu", label="fine")
        report = server.run()
        assert doomed.status == "failed"
        assert doomed.attempts == 3 and doomed.retries == 2
        assert "3 attempt" in doomed.error
        assert doomed.wasted_seconds > 0.0
        # The epoch survives: the healthy query of the same tenant runs.
        assert healthy.status == "completed"
        assert report.failed == 1 and report.completed == 1
        assert report.tenants["t"].failed == 1

    def test_per_tenant_retry_policy_overrides_server_default(self):
        plan = FaultPlan().transient_errors(rate=1.0, labels=("doomed",))
        server = QueryServer(
            default_server(), fault_plan=plan, cache_budget_bytes=0,
            retry_policy=RetryPolicy(max_attempts=5, backoff_seconds=0.01))
        server.register_dataset(_small_tables())
        server.open_session(
            "strict", retry=RetryPolicy(max_attempts=1,
                                        backoff_seconds=0.01))
        ticket = server.submit("strict", _plan_x(), "cpu", label="doomed")
        server.run()
        assert ticket.status == "failed"
        assert ticket.attempts == 1 and ticket.retries == 0

    def test_retry_policy_validation_and_backoff(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff_seconds"):
            RetryPolicy(backoff_seconds=-1.0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError, match="deadline"):
            RetryPolicy(deadline_seconds=0.0)
        policy = RetryPolicy(backoff_seconds=0.1, backoff_multiplier=2.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(3) == pytest.approx(0.4)
        with pytest.raises(ValueError, match="1-based"):
            policy.backoff(0)


# ----------------------------------------------------------------------
# Resilient serving: mode failover
# ----------------------------------------------------------------------
class TestModeFailover:
    def test_q9_style_gpu_overflow_degrades_to_cpu(self, tpch_dataset):
        # The paper's Section 6.4 failure: the join build side exceeds GPU
        # memory.  The filters below are perfectly correlated (the same
        # predicate repeated), so the estimator's independence assumption
        # multiplies their selectivities and underestimates the build side
        # 4x: the optimizer lets a GPU-resident join through, the
        # executor's capacity check raises OutOfDeviceMemoryError
        # mid-dispatch, and the server fails the query over hybrid -> cpu
        # where it completes.
        filtered = scan("orders")
        for _ in range(4):
            filtered = filtered.filter(col("o_orderkey") >= lit(3000))
        plan = (filtered
                .join(scan("lineitem", ["l_orderkey", "l_extendedprice"]),
                      ["o_orderkey"], ["l_orderkey"])
                .aggregate([], [agg_sum(col("l_extendedprice"), "s")]))
        tiny_gpu = gtx_1080().with_memory_capacity(64 * 1024)
        topology = default_server(gpu_spec=tiny_gpu)

        # The engine alone raises (end-to-end coverage of the error path).
        probe_engine = HAPEEngine(default_server(gpu_spec=tiny_gpu))
        probe_engine.register_dataset(tpch_dataset.tables)
        with pytest.raises(OutOfDeviceMemoryError, match="gpu0"):
            probe_engine.execute(plan, "hybrid")

        server = QueryServer(topology, cache_budget_bytes=0)
        server.register_dataset(tpch_dataset.tables)
        ticket = server.submit("t", plan, "hybrid", label="q9ish")
        report = server.run()
        assert ticket.status == "completed"
        assert ticket.final_mode == "cpu"
        assert ticket.failovers == 1 and report.failovers == 1
        assert ticket.retries == 0
        assert report.tenants["t"].failovers == 1

        # Reference-identical to a fault-free cpu-mode solo run.
        reference_engine = HAPEEngine(default_server())
        reference_engine.register_dataset(tpch_dataset.tables)
        reference = reference_engine.execute(plan, "cpu")
        assert _table_bytes(ticket.result.table) == \
            _table_bytes(reference.table)
        assert ticket.result.simulated_seconds == reference.simulated_seconds

    def test_injected_memory_shrink_walks_ladder(self, tpch_dataset):
        # Shrinking GPU memory re-creates Q9: gpu mode becomes impossible
        # (OptimizerError at planning), hybrid co-processes and completes.
        plan = scan("orders").join(
            scan("lineitem", ["l_orderkey", "l_extendedprice"]),
            ["o_orderkey"], ["l_orderkey"]).aggregate(
                [], [agg_sum(col("l_extendedprice"), "s")])
        fault_plan = (FaultPlan()
                      .shrink_device_memory("gpu0", at=0.0, factor=0.00001)
                      .shrink_device_memory("gpu1", at=0.0, factor=0.00001))
        topology = default_server()
        server = QueryServer(topology, fault_plan=fault_plan,
                             cache_budget_bytes=0)
        server.register_dataset(tpch_dataset.tables)
        ticket = server.submit("t", plan, "gpu", label="q9ish")
        server.run()
        assert ticket.status == "completed"
        assert ticket.final_mode in ("hybrid", "cpu")
        assert ticket.failovers >= 1
        # Injected shrinkage is epoch-scoped.
        assert topology.device("gpu0").spec.memory_capacity_bytes == \
            gtx_1080().memory_capacity_bytes

    def test_cpu_mode_has_no_rung_left(self):
        plan = FaultPlan().fail_attempt("q", attempt=1, device="cpu0",
                                        fraction=0.5)
        server = QueryServer(default_server(), fault_plan=plan,
                             cache_budget_bytes=0, breaker_threshold=100)
        server.register_dataset(_small_tables())
        ticket = server.submit("t", _plan_x(), "cpu", label="q")
        report = server.run()
        assert ticket.status == "failed"
        assert ticket.failovers == 0
        assert report.failed == 1


# ----------------------------------------------------------------------
# Resilient serving: mid-epoch device failure (chaos)
# ----------------------------------------------------------------------
class TestMidEpochDeviceFailure:
    def test_gpu_killed_mid_query_fails_over_to_cpu(self, tpch_dataset):
        queries = {
            "a": _q1_like(tpch_dataset),
            "b": (scan("orders", ["o_orderkey", "o_custkey"])
                  .aggregate([], [agg_sum(col("o_custkey"), "s")])),
        }
        # Find when the first gpu query would finish, then kill both GPUs
        # mid-flight.
        probe = HAPEEngine(default_server())
        probe.register_dataset(tpch_dataset.tables)
        first_sim = probe.execute(queries["a"], "gpu").simulated_seconds
        kill_at = first_sim * 0.5

        fault_plan = (FaultPlan()
                      .fail_device("gpu0", at=kill_at)
                      .fail_device("gpu1", at=kill_at))
        server = QueryServer(default_server(), fault_plan=fault_plan,
                             cache_budget_bytes=0)
        server.register_dataset(tpch_dataset.tables)
        t_a = server.submit("t", queries["a"], "gpu", label="a")
        t_b = server.submit("u", queries["b"], "gpu", label="b")
        report = server.run()

        reference = HAPEEngine(default_server())
        reference.register_dataset(tpch_dataset.tables)
        for ticket, plan in ((t_a, queries["a"]), (t_b, queries["b"])):
            assert ticket.status == "completed"
            assert ticket.final_mode == "cpu"
            # gpu -> hybrid -> cpu: hybrid is refused synchronously because
            # every GPU is down, so each query records two failovers.
            assert ticket.failovers == 2
            solo = reference.execute(plan, "cpu")
            assert ticket.result.simulated_seconds == solo.simulated_seconds
            assert _table_bytes(ticket.result.table) == \
                _table_bytes(solo.table)
        # The killed in-flight attempt burned simulated time.
        assert t_a.wasted_seconds > 0.0
        assert report.wasted_seconds >= t_a.wasted_seconds
        assert report.completed == 2 and report.failed == 0
        # Injected failures are epoch-scoped: the topology healed.
        assert server.topology.device("gpu0").is_available
        assert server.topology.device("gpu1").is_available

    def test_device_recovery_lets_later_queries_use_gpus(self, tpch_dataset):
        plan = _q1_like(tpch_dataset)
        probe = HAPEEngine(default_server())
        probe.register_dataset(tpch_dataset.tables)
        gpu_sim = probe.execute(plan, "gpu").simulated_seconds

        fault_plan = FaultPlan().fail_device(
            "gpu0", at=0.0, recover_at=1.0).fail_device(
            "gpu1", at=0.0, recover_at=1.0)
        server = QueryServer(default_server(), fault_plan=fault_plan,
                             cache_budget_bytes=0)
        server.register_dataset(tpch_dataset.tables)
        early = server.submit("t", plan, "gpu", label="early", at=0.0)
        late = server.submit("t", plan, "gpu", label="late", at=2.0)
        server.run()
        # The early query had no GPUs and fell back to cpu mode; the late
        # one ran after recovery, in its requested mode, at the fault-free
        # gpu-mode cost.
        assert early.status == "completed" and early.final_mode == "cpu"
        assert late.status == "completed" and late.final_mode == "gpu"
        assert late.result.simulated_seconds == gpu_sim


# ----------------------------------------------------------------------
# Resilient serving: deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_deadline_cuts_a_running_query(self, tpch_dataset):
        plan = _q1_like(tpch_dataset)
        probe = HAPEEngine(default_server())
        probe.register_dataset(tpch_dataset.tables)
        sim = probe.execute(plan, "cpu").simulated_seconds

        server = QueryServer(default_server(), cache_budget_bytes=0)
        server.register_dataset(tpch_dataset.tables)
        ticket = server.submit("t", plan, "cpu", label="q",
                               deadline=sim * 0.5)
        report = server.run()
        assert ticket.status == "timed_out"
        assert ticket.finish_time == pytest.approx(sim * 0.5)
        assert ticket.wasted_seconds > 0.0
        assert "deadline" in ticket.error
        assert report.timed_out == 1 and report.completed == 0
        assert report.tenants["t"].timed_out == 1

    def test_deadline_bounds_queueing_too(self, tpch_dataset):
        plan = _q1_like(tpch_dataset)
        probe = HAPEEngine(default_server())
        probe.register_dataset(tpch_dataset.tables)
        sim = probe.execute(plan, "cpu").simulated_seconds

        server = QueryServer(default_server(), cache_budget_bytes=0)
        server.register_dataset(tpch_dataset.tables)
        first = server.submit("t", plan, "cpu", label="first")
        # Dispatches only after ``first`` finishes — past its deadline.
        starved = server.submit("t", plan, "cpu", label="starved",
                                deadline=sim * 0.5)
        server.run()
        assert first.status == "completed"
        assert starved.status == "timed_out"
        # Never dispatched: no simulated work was wasted on it.
        assert starved.wasted_seconds == 0.0

    def test_deadline_default_comes_from_retry_policy(self):
        server = QueryServer(
            default_server(), cache_budget_bytes=0,
            retry_policy=RetryPolicy(deadline_seconds=123.0))
        server.register_dataset(_small_tables())
        ticket = server.submit("t", _plan_x(), "cpu")
        assert ticket.deadline_seconds == 123.0
        assert ticket.deadline_time == 123.0

    def test_timeout_error_type(self):
        error = QueryTimeoutError("q", 1.5)
        assert isinstance(error, FaultError)
        assert isinstance(error, ReproError)
        assert "deadline" in str(error)


# ----------------------------------------------------------------------
# Circuit breaker inside the serving loop
# ----------------------------------------------------------------------
class TestServerCircuitBreaker:
    def test_repeated_device_faults_trip_and_recover(self, tpch_dataset):
        plan = _q1_like(tpch_dataset)
        probe = HAPEEngine(default_server())
        probe.register_dataset(tpch_dataset.tables)
        full_gpu_sim = probe.execute(plan, "gpu").simulated_seconds

        # One device-scoped fault trips the (threshold=1) breaker on gpu0;
        # the victim fails over, and a query submitted before the cooldown
        # elapses runs gpu-mode on gpu1 alone.
        fault_plan = FaultPlan().fail_attempt("victim", attempt=1,
                                              device="gpu0", fraction=0.5)
        server = QueryServer(default_server(), fault_plan=fault_plan,
                             cache_budget_bytes=0, breaker_threshold=1,
                             breaker_cooldown_seconds=10.0)
        server.register_dataset(tpch_dataset.tables)
        victim = server.submit("t", plan, "gpu", label="victim")
        follower = server.submit("u", plan, "gpu", label="follower",
                                 at=1.0)
        server.run()
        assert victim.status == "completed"
        assert victim.failovers == 1  # gpu -> hybrid (gpu1 still up)
        assert victim.final_mode == "hybrid"
        assert follower.status == "completed"
        assert follower.final_mode == "gpu"
        # gpu0 was out of rotation: the follower ran on gpu1 alone, which
        # costs more than the fault-free two-GPU run.
        assert follower.result.simulated_seconds > full_gpu_sim
        assert follower.result.device_busy.get("gpu0", 0.0) == 0.0
        # Breaker state is epoch-scoped.
        assert server.topology.device("gpu0").is_available

    def test_probe_after_cooldown_restores_full_parallelism(self,
                                                            tpch_dataset):
        plan = _q1_like(tpch_dataset)
        probe = HAPEEngine(default_server())
        probe.register_dataset(tpch_dataset.tables)
        full_gpu_sim = probe.execute(plan, "gpu").simulated_seconds

        fault_plan = FaultPlan().fail_attempt("victim", attempt=1,
                                              device="gpu0", fraction=0.5)
        server = QueryServer(default_server(), fault_plan=fault_plan,
                             cache_budget_bytes=0, breaker_threshold=1,
                             breaker_cooldown_seconds=0.5)
        server.register_dataset(tpch_dataset.tables)
        server.submit("t", plan, "gpu", label="victim")
        healed = server.submit("u", plan, "gpu", label="healed", at=2.0)
        server.run()
        # The cooldown elapsed before t=2.0: the probe half-opened gpu0,
        # the healed query ran on both GPUs at the fault-free cost, and
        # its success closed the circuit.
        assert healed.status == "completed"
        assert healed.result.simulated_seconds == full_gpu_sim


# ----------------------------------------------------------------------
# The PR-identity invariant and exception safety
# ----------------------------------------------------------------------
class TestFaultFreeIdentityAndSafety:
    def test_empty_fault_plan_is_bit_identical(self, tpch_dataset):
        def serve(fault_plan):
            server = QueryServer(default_server(), fault_plan=fault_plan)
            server.register_dataset(tpch_dataset.tables)
            for tenant, mode in (("cpu-a", "cpu"), ("gpu-a", "gpu"),
                                 ("hy-a", "hybrid")):
                server.open_session(tenant, max_concurrency=2)
                server.submit(tenant, _q1_like(tpch_dataset), mode)
                server.submit(
                    tenant,
                    scan("orders", ["o_orderkey", "o_custkey"])
                    .aggregate([], [agg_sum(col("o_custkey"), "s")]),
                    mode)
            return server.run()

        plain = serve(None)            # fault machinery defaulted
        explicit = serve(FaultPlan())  # explicitly empty plan
        assert plain.makespan == explicit.makespan
        assert plain.serial_seconds == explicit.serial_seconds
        for left, right in zip(plain.tickets, explicit.tickets):
            assert left.status == right.status == "completed"
            assert left.start_time == right.start_time
            assert left.finish_time == right.finish_time
            assert left.reserved == right.reserved
            assert left.attempts == right.attempts == 1
            assert left.wasted_seconds == right.wasted_seconds == 0.0
            assert left.result.simulated_seconds == \
                right.result.simulated_seconds
            assert _table_bytes(left.result.table) == \
                _table_bytes(right.result.table)

    def test_run_is_exception_safe_and_server_reusable(self, monkeypatch):
        server = QueryServer(default_server())
        server.register_dataset(_small_tables())
        session = server.open_session("t")
        server.submit("t", _plan_x(), "cpu", label="boom")
        server.submit("t", _plan_y(), "cpu", label="after")

        def explode(*args, **kwargs):
            raise RuntimeError("synthetic engine bug")

        monkeypatch.setattr(session, "execute", explode)
        with pytest.raises(ServingError, match="epoch aborted") as excinfo:
            server.run()
        partial = excinfo.value.report
        assert partial is not None
        assert all(t.status == "failed" for t in partial.tickets)
        assert all("epoch aborted" in t.error for t in partial.tickets)

        # The server survives: admission state unwound, next epoch clean.
        monkeypatch.undo()
        ticket = server.submit("t", _plan_x(), "cpu")
        report = server.run()
        assert ticket.status == "completed"
        assert report.completed == 1

    def test_fault_taxonomy_hierarchy(self):
        assert issubclass(FaultError, ReproError)
        assert issubclass(DeviceUnavailableError, FaultError)
        assert issubclass(QueryTimeoutError, FaultError)
        assert issubclass(RetryExhaustedError, FaultError)
        exhausted = RetryExhaustedError("q", 3, ValueError("root cause"))
        assert exhausted.attempts == 3
        assert "root cause" in str(exhausted)
        unavailable = DeviceUnavailableError("gpu", "all GPUs failed")
        assert unavailable.kind == "gpu"
        assert "all GPUs failed" in str(unavailable)

    def test_chaos_runs_are_deterministic(self, tpch_dataset):
        def serve():
            fault_plan = (FaultPlan(seed=21)
                          .transient_errors(rate=0.4, fraction=0.5)
                          .fail_device("gpu0", at=1e-5, recover_at=1.0))
            server = QueryServer(
                default_server(), fault_plan=fault_plan,
                cache_budget_bytes=0,
                retry_policy=RetryPolicy(max_attempts=4,
                                         backoff_seconds=1e-4))
            server.register_dataset(tpch_dataset.tables)
            for tenant, mode in (("a", "cpu"), ("b", "gpu"),
                                 ("c", "hybrid")):
                server.open_session(tenant, max_concurrency=2)
                for i in range(3):
                    server.submit(tenant, _q1_like(tpch_dataset), mode,
                                  label=f"{tenant}{i}")
            return server.run()

        first, second = serve(), serve()
        assert first.makespan == second.makespan
        for left, right in zip(first.tickets, second.tickets):
            assert left.status == right.status
            assert left.attempts == right.attempts
            assert left.retries == right.retries
            assert left.failovers == right.failovers
            assert left.wasted_seconds == right.wasted_seconds
            assert left.finish_time == right.finish_time
        assert first.retries + first.failovers > 0  # chaos actually struck
