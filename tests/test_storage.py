"""Tests for the columnar storage layer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import CatalogError, SchemaError
from repro.storage import (
    Block,
    Catalog,
    Column,
    Table,
    blocks_from_table,
    concat_blocks,
    date_to_int,
    int_to_date,
    make_join_pair,
    make_join_relation,
    make_partial_match_pair,
    make_skewed_relation,
    year_of,
)


class TestDtypes:
    def test_date_round_trip(self):
        assert date_to_int("1998-09-02") == 19980902
        assert int_to_date(19980902) == "1998-09-02"

    def test_invalid_dates_rejected(self):
        with pytest.raises(ValueError):
            date_to_int("1998/09/02")
        with pytest.raises(ValueError):
            date_to_int("1998-13-02")

    def test_year_extraction(self):
        dates = np.asarray([19940101, 19951231], dtype=np.int32)
        assert list(year_of(dates)) == [1994, 1995]

    @given(st.integers(min_value=1992, max_value=2030),
           st.integers(min_value=1, max_value=12),
           st.integers(min_value=1, max_value=28))
    def test_date_round_trip_property(self, year, month, day):
        text = f"{year:04d}-{month:02d}-{day:02d}"
        assert int_to_date(date_to_int(text)) == text


class TestColumnAndTable:
    def test_column_basicas(self):
        column = Column("x", np.arange(10, dtype=np.int32))
        assert len(column) == 10
        assert column.nbytes == 40
        assert column.take(np.asarray([1, 3])).values.tolist() == [1, 3]

    def test_dictionary_column(self):
        column = Column.from_strings("flag", ["A", "N", "A", "R"])
        assert sorted(set(column.decoded())) == ["A", "N", "R"]
        assert column.values.dtype == np.int32

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", [Column("a", np.arange(3)), Column("b", np.arange(4))])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", [Column("a", np.arange(3)), Column("a", np.arange(3))])

    def test_table_operations(self):
        table = Table.from_arrays("t", {"a": np.arange(6), "b": np.arange(6) * 2})
        assert table.num_rows == 6
        filtered = table.filter(table.array("a") % 2 == 0)
        assert filtered.num_rows == 3
        sliced = table.slice(1, 3)
        assert sliced.array("a").tolist() == [1, 2]
        selected = table.select(["b"])
        assert selected.column_names == ("b",)
        with pytest.raises(SchemaError):
            table.column("missing")

    def test_table_equality_ignoring_order(self):
        table = Table.from_arrays("t", {"a": np.asarray([3, 1, 2])})
        shuffled = Table.from_arrays("t", {"a": np.asarray([1, 2, 3])})
        assert table.equals(shuffled, check_order=False)
        assert not table.equals(shuffled, check_order=True)

    def test_with_location(self):
        table = Table.from_arrays("t", {"a": np.arange(3)})
        moved = table.with_location("gpu0")
        assert moved.location == "gpu0"
        assert table.location == "cpu0"


class TestCatalog:
    def test_register_and_lookup(self):
        catalog = Catalog()
        table = Table.from_arrays("t", {"a": np.arange(10)})
        catalog.register(table)
        assert "t" in catalog
        assert catalog.table("t") is table
        assert catalog.stats("t").num_rows == 10
        assert catalog.stats("t").distinct("a") == 10

    def test_duplicate_registration(self):
        catalog = Catalog()
        table = Table.from_arrays("t", {"a": np.arange(3)})
        catalog.register(table)
        with pytest.raises(CatalogError):
            catalog.register(table)
        catalog.register(table, replace=True)

    def test_unknown_table(self):
        with pytest.raises(CatalogError):
            Catalog().table("nope")

    def test_drop(self):
        catalog = Catalog()
        catalog.register(Table.from_arrays("t", {"a": np.arange(3)}))
        catalog.drop("t")
        assert "t" not in catalog


class TestBlocks:
    def test_blocks_from_table_cover_all_rows(self):
        table = Table.from_arrays("t", {"a": np.arange(10)})
        blocks = list(blocks_from_table(table, 3))
        assert [block.num_rows for block in blocks] == [3, 3, 3, 1]
        merged = concat_blocks(blocks)
        assert merged.array("a").tolist() == list(range(10))

    def test_block_metadata(self):
        block = Block({"a": np.arange(4)}, location="cpu0", partition=7)
        moved = block.with_location("gpu1")
        assert moved.location == "gpu1"
        assert moved.partition == 7
        assert block.location == "cpu0"

    def test_invalid_blocks(self):
        with pytest.raises(SchemaError):
            Block({}, location="cpu0")
        with pytest.raises(SchemaError):
            Block({"a": np.arange(3), "b": np.arange(2)}, location="cpu0")
        with pytest.raises(ValueError):
            list(blocks_from_table(
                Table.from_arrays("t", {"a": np.arange(3)}), 0))


class TestDataGenerators:
    def test_join_pair_has_identical_key_sets(self):
        workload = make_join_pair(1000, seed=1)
        assert set(workload.build.array("key")) == set(workload.probe.array("key"))
        assert workload.expected_matches == 1000

    def test_partial_match_pair(self):
        workload = make_partial_match_pair(500, 400, match_fraction=0.25, seed=2)
        build_keys = set(workload.build.array("key").tolist())
        matches = sum(1 for key in workload.probe.array("key")
                      if int(key) in build_keys)
        assert matches == workload.expected_matches == 100

    def test_skewed_relation(self):
        table = make_skewed_relation(10_000, zipf_s=1.3, seed=3)
        values, counts = np.unique(table.array("key"), return_counts=True)
        assert counts.max() > 10 * np.median(counts)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            make_join_relation(0)
        with pytest.raises(ValueError):
            make_join_relation(10, key_space=5)
        with pytest.raises(ValueError):
            make_partial_match_pair(10, 10, match_fraction=1.5)
        with pytest.raises(ValueError):
            make_skewed_relation(10, zipf_s=0.9)
