"""Tests for the commercial-system baselines and the paper-scale models."""

from __future__ import annotations

import pytest

from repro.baselines import DBMSC, DBMSG
from repro.errors import UnsupportedQueryError
from repro.perf import (
    FIGURE8_SYSTEMS,
    JoinModels,
    TPCHModels,
    format_headline_claims,
    format_series,
    headline_claims,
)
from repro.relational import execute_logical
from repro.workloads import build_query


class TestDBMSC:
    def test_q1_matches_reference_and_costs_time(self, engine, tpch_dataset):
        query = build_query("Q1", tpch_dataset)
        baseline = DBMSC(engine.topology)
        result = baseline.execute(query.plan, engine.catalog)
        reference = execute_logical(query.plan, engine.catalog)
        assert result.table.equals(reference, check_order=False)
        assert result.simulated_seconds > 0

    def test_vector_at_a_time_penalizes_many_aggregates(self, engine, tpch_dataset):
        """Q1 (8 aggregates) is hit harder than Q6 (1 aggregate)."""
        baseline = DBMSC(engine.topology)
        q1 = baseline.execute(build_query("Q1", tpch_dataset).plan,
                              engine.catalog)
        q6 = baseline.execute(build_query("Q6", tpch_dataset).plan,
                              engine.catalog)
        assert q1.simulated_seconds > q6.simulated_seconds

    def test_join_seconds_scales_with_input(self):
        baseline = DBMSC()
        assert baseline.join_seconds(64_000_000) < baseline.join_seconds(256_000_000)


class TestDBMSG:
    def test_supports_only_star_like_queries(self, engine, tpch_dataset):
        baseline = DBMSG(engine.topology)
        q1 = build_query("Q1", tpch_dataset)
        result = baseline.execute(q1.plan, engine.catalog, query_name="Q1")
        reference = execute_logical(q1.plan, engine.catalog)
        assert result.table.equals(reference, check_order=False)
        for name in ("Q5", "Q6", "Q9"):
            with pytest.raises(UnsupportedQueryError):
                baseline.execute(build_query(name, tpch_dataset).plan,
                                 engine.catalog, query_name=name)

    def test_out_of_gpu_support_check(self):
        baseline = DBMSG()
        assert baseline.supports_out_of_gpu(64_000_000)
        assert not baseline.supports_out_of_gpu(2_000_000_000)

    def test_out_of_gpu_joins_are_interconnect_bound(self):
        baseline = DBMSG()
        n = 512_000_000
        assert baseline.join_seconds(n, data_on_gpu=False) \
            > 4 * baseline.join_seconds(min(n, 128_000_000), data_on_gpu=True)


class TestFigure5Model:
    def test_scratchpad_beats_l1_everywhere(self):
        series = JoinModels().figure5_series()
        for (size, sm), (_, l1), (_, both) in zip(series["SM"], series["L1"],
                                                  series["SM+L1"]):
            assert sm < l1, f"SM must beat L1 at partition size {size}"
            assert sm <= both * 1.05

    def test_scratchpad_curve_is_flat(self):
        series = dict(JoinModels().figure5_series())["SM"]
        values = [seconds for _, seconds in series if _ >= 512]
        assert max(values) / min(values) < 2.0


class TestFigure6Model:
    def test_gpu_radix_join_wins(self):
        models = JoinModels()
        n = 128_000_000
        gpu_radix = models.partitioned_gpu_seconds(n)
        assert models.partitioned_cpu_seconds(n) > 3 * gpu_radix
        assert models.non_partitioned_gpu_seconds(n) > 3 * gpu_radix
        assert models.dbms_c_seconds(n) > 3 * gpu_radix

    def test_partitioned_cpu_beats_non_partitioned_at_scale(self):
        models = JoinModels()
        n = 128_000_000
        assert models.partitioned_cpu_seconds(n) \
            < models.non_partitioned_cpu_seconds(n)

    def test_gpu_variants_stop_at_memory_capacity(self):
        models = JoinModels()
        assert models.partitioned_gpu_seconds(512_000_000) is None
        series = models.figure6_series(sizes_mtuples=(128, 512))
        assert series["Partitioned GPU"][1].seconds is None
        assert not series["Partitioned GPU"][1].supported


class TestFigure7Model:
    def test_coprocessing_beats_both_baselines(self):
        models = JoinModels()
        for n in (256_000_000, 2_048_000_000):
            coproc = models.coprocessing_seconds(n, num_gpus=2)
            assert coproc < models.dbms_c_seconds(n)
            assert coproc < models.dbms_g_out_of_gpu_seconds(n)

    def test_second_gpu_almost_doubles_throughput(self):
        models = JoinModels()
        n = 2_048_000_000
        speedup = (models.coprocessing_seconds(n, num_gpus=1)
                   / models.coprocessing_seconds(n, num_gpus=2))
        assert 1.4 <= speedup <= 2.0

    def test_series_have_all_sizes(self):
        series = JoinModels().figure7_series()
        assert set(series) == {"1 GPU", "2 GPUs", "DBMS C", "DBMS G"}
        assert all(len(points) == 4 for points in series.values())


class TestFigure8And9Models:
    @pytest.fixture(scope="class")
    def figure8(self):
        return TPCHModels().figure8()

    def test_every_query_has_every_system(self, figure8):
        for query, estimates in figure8.items():
            assert [e.system for e in estimates] == list(FIGURE8_SYSTEMS)

    def test_scan_bound_queries_favor_cpu(self, figure8):
        for query in ("Q1", "Q6"):
            estimates = {e.system: e.seconds for e in figure8[query]}
            assert estimates["Proteus GPUs"] > 2.0 * estimates["Proteus CPUs"]

    def test_join_heavy_q5_favors_gpu(self, figure8):
        estimates = {e.system: e.seconds for e in figure8["Q5"]}
        assert estimates["Proteus GPUs"] < estimates["Proteus CPUs"]

    def test_hybrid_always_wins(self, figure8):
        for query, estimates in figure8.items():
            by_system = {e.system: e.seconds for e in estimates}
            hybrid = by_system["Proteus Hybrid"]
            for system, seconds in by_system.items():
                if seconds is not None:
                    assert hybrid <= seconds * 1.001

    def test_unsupported_configurations(self, figure8):
        q9 = {e.system: e for e in figure8["Q9"]}
        assert not q9["Proteus GPUs"].supported
        assert not q9["DBMS G"].supported
        q5 = {e.system: e for e in figure8["Q5"]}
        assert not q5["DBMS G"].supported

    def test_figure9_partitioned_join_wins(self):
        figure9 = TPCHModels().figure9()
        for config in ("GPU", "Hybrid"):
            assert figure9[config]["Partitioned join"] \
                < figure9[config]["Non partitioned join"]

    def test_headline_claims_positive_and_formatted(self):
        claims = headline_claims()
        assert len(claims) >= 10
        assert all(claim.measured > 1.0 for claim in claims)
        text = format_headline_claims()
        assert "paper" in text and "measured" in text

    def test_format_series_helper(self):
        series = JoinModels().figure7_series(sizes_mtuples=(256,))
        text = format_series("Figure 7", series)
        assert "Figure 7" in text and "DBMS C" in text
