"""Tests for aggregation, filter/project and the HetExchange operators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.operators import (
    Router,
    apply_filter_project,
    broadcast,
    device_crossing_cost,
    hash_aggregate,
    mem_move,
    merge_partials,
    zip_partitions,
)
from repro.relational import RoutingPolicy, agg_avg, agg_count, agg_sum, col, lit
from repro.storage import Block


@pytest.fixture
def columns():
    return {
        "group": np.asarray([0, 1, 0, 1, 2], dtype=np.int32),
        "value": np.asarray([1.0, 2.0, 3.0, 4.0, 5.0]),
    }


class TestFilterProject:
    def test_filter_and_project(self, columns, cpu):
        result = apply_filter_project(
            columns, cpu,
            predicate=col("value") > lit(2.0),
            projections={"double": col("value") * lit(2.0),
                         "group": col("group")})
        assert result.num_rows == 3
        assert result.columns["double"].tolist() == [6.0, 8.0, 10.0]
        assert result.cost.seconds > 0

    def test_projection_only(self, columns, cpu):
        result = apply_filter_project(columns, cpu,
                                      projections={"v": col("value")})
        assert result.num_rows == 5

    def test_empty_input(self, cpu):
        result = apply_filter_project({"x": np.asarray([])[:0]}, cpu,
                                      predicate=col("x") > lit(1))
        assert result.num_rows == 0

    def test_gpu_charges_kernel_launch(self, columns, gpu):
        result = apply_filter_project(columns, gpu,
                                      predicate=col("value") > lit(0.0))
        assert "kernel-launch" in result.cost.breakdown


class TestAggregation:
    def test_grouped_aggregate_matches_numpy(self, columns, cpu):
        result = hash_aggregate(
            columns, cpu, group_by=["group"],
            aggregates=[agg_sum(col("value"), "total"),
                        agg_count("n"),
                        agg_avg(col("value"), "mean")])
        by_group = dict(zip(result.columns["group"].tolist(),
                            result.columns["total"].tolist()))
        assert by_group == {0: 4.0, 1: 6.0, 2: 5.0}
        means = dict(zip(result.columns["group"].tolist(),
                         result.columns["mean"].tolist()))
        assert means[0] == pytest.approx(2.0)

    def test_grand_aggregate(self, columns, cpu):
        result = hash_aggregate(columns, cpu, group_by=[],
                                aggregates=[agg_sum(col("value"), "s")])
        assert result.columns["s"][0] == pytest.approx(15.0)

    def test_partial_then_merge_equals_complete(self, columns, cpu):
        aggregates = [agg_sum(col("value"), "total"),
                      agg_avg(col("value"), "mean"), agg_count("n")]
        first = {name: values[:3] for name, values in columns.items()}
        second = {name: values[3:] for name, values in columns.items()}
        partials = [
            hash_aggregate(first, cpu, group_by=["group"],
                           aggregates=aggregates, phase="partial").columns,
            hash_aggregate(second, cpu, group_by=["group"],
                           aggregates=aggregates, phase="partial").columns,
        ]
        merged = merge_partials(partials, cpu, group_by=["group"],
                                aggregates=aggregates)
        complete = hash_aggregate(columns, cpu, group_by=["group"],
                                  aggregates=aggregates, phase="complete")
        merged_sorted = {k: np.asarray(v)[np.argsort(merged.columns["group"])]
                         for k, v in merged.columns.items()}
        complete_sorted = {k: np.asarray(v)[np.argsort(complete.columns["group"])]
                           for k, v in complete.columns.items()}
        for key in ("total", "mean", "n"):
            np.testing.assert_allclose(merged_sorted[key], complete_sorted[key])

    def test_empty_aggregate(self, cpu):
        result = hash_aggregate({}, cpu, group_by=[],
                                aggregates=[agg_count("n")])
        assert result.num_rows in (0, 1)


class TestRouter:
    def test_load_aware_balances_by_throughput(self, topology):
        cpu, gpu = topology.device("cpu0"), topology.device("gpu0")
        router = Router([cpu, gpu], RoutingPolicy.LOAD_AWARE)
        for _ in range(100):
            block = Block({"x": np.zeros(1000, dtype=np.int64)}, location="cpu0")
            router.route(block)
        assignments = router.assignments()
        # The GPU has higher memory bandwidth, so it gets more packets.
        assert assignments[gpu.name] > assignments[cpu.name]

    def test_round_robin_policy(self, topology):
        devices = list(topology.cpus())
        router = Router(devices, RoutingPolicy.ROUND_ROBIN)
        block = Block({"x": np.zeros(8)}, location="cpu0")
        picks = [router.route(block).name for _ in range(4)]
        assert picks == ["cpu0", "cpu1", "cpu0", "cpu1"]

    def test_hash_policy_requires_partition_metadata(self, topology):
        router = Router(list(topology.gpus()), RoutingPolicy.HASH)
        tagged = Block({"x": np.zeros(4)}, location="cpu0", partition=3)
        assert router.route(tagged).name == "gpu1"
        untagged = Block({"x": np.zeros(4)}, location="cpu0")
        with pytest.raises(ExecutionError):
            router.route(untagged)

    def test_locality_aware_prefers_local(self, topology):
        devices = [topology.device("cpu0"), topology.device("cpu1")]
        router = Router(devices, RoutingPolicy.LOCALITY_AWARE)
        block = Block({"x": np.zeros(4)}, location="cpu1")
        assert router.route(block).name == "cpu1"

    def test_empty_consumer_list_rejected(self):
        with pytest.raises(ExecutionError):
            Router([], RoutingPolicy.LOAD_AWARE)


class TestDataMovement:
    def test_mem_move_charges_link(self, topology):
        block = Block({"x": np.zeros(1_000_000, dtype=np.int64)},
                      location="cpu0")
        moved, ready = mem_move(block, topology, "gpu0")
        assert moved.location == "gpu0"
        assert ready > 0
        assert topology.link("pcie0").bytes_moved == block.nbytes

    def test_mem_move_to_same_location_is_free(self, topology):
        block = Block({"x": np.zeros(10)}, location="cpu0")
        moved, ready = mem_move(block, topology, "cpu0", earliest=1.5)
        assert ready == 1.5
        assert moved is block

    def test_mem_move_respects_gpu_capacity(self, topology):
        gpu = topology.device("gpu0")
        gpu.allocate(gpu.memory.free_bytes - 10)
        block = Block({"x": np.zeros(1000, dtype=np.int64)}, location="cpu0")
        with pytest.raises(ExecutionError):
            mem_move(block, topology, "gpu0")

    def test_broadcast_shares_common_links(self, topology):
        block = Block({"x": np.zeros(1_000_000, dtype=np.int64)},
                      location="cpu0")
        copies, ready = broadcast(block, topology, ["gpu0", "gpu1"])
        assert set(copies) == {"gpu0", "gpu1"}
        assert ready > 0
        # The QPI hop towards gpu1's socket is paid exactly once.
        assert topology.link("qpi01").bytes_moved == block.nbytes

    def test_device_crossing_cost(self, topology):
        gpu_cost = device_crossing_cost(topology.device("gpu0"))
        cpu_cost = device_crossing_cost(topology.device("cpu0"))
        assert gpu_cost.seconds > cpu_cost.seconds

    def test_zip_partitions_validates_alignment(self):
        left = [Block({"x": np.zeros(2)}, location="cpu0", partition=i)
                for i in range(3)]
        right = [Block({"x": np.zeros(2)}, location="cpu0", partition=i)
                 for i in range(3)]
        assert len(zip_partitions(left, right)) == 3
        with pytest.raises(ExecutionError):
            zip_partitions(left, right[:2])
        misaligned = [Block({"x": np.zeros(2)}, location="cpu0", partition=9)
                      for _ in range(3)]
        with pytest.raises(ExecutionError):
            zip_partitions(left, misaligned)
