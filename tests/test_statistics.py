"""Tests for the statistics subsystem (collection + cardinality estimation).

Covers the contracts of ``docs/STATISTICS.md``:

* histogram edge cases — constant columns (a single zero-width point-mass
  bin), empty/all-NaN columns (no histogram at all), NaN exclusion and
  infinity accounting keep every mass estimate in ``[0, 1]``;
* estimator rules — equality is ``1 / NDV`` (zero outside the column
  range), range selectivities are monotone in the literal, conjunctions
  damp at :data:`CONJUNCTION_FLOOR`, FK joins estimate the probe side's
  cardinality under containment;
* estimation quality — median q-error at most 4 on every evaluated TPC-H
  query at SF 0.05;
* lifecycle — statistics are collected at ``register()`` time, swapped
  atomically on ``register(replace=True)`` and retired by ``drop``;
* the refusal contract — GPU-only plans are refused at plan time only on
  statistics-backed estimates; guessed estimates defer to the executor's
  runtime memory enforcement (and the legacy ``use_statistics=False``
  heuristic keeps refusing at plan time, as before);
* session-level ``"auto"`` mode resolution from the working-set estimate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import HAPEEngine
from repro.engine.modes import ExecutionMode
from repro.engine.optimizer import OptimizerOptions
from repro.errors import CatalogError, OptimizerError, OutOfDeviceMemoryError
from repro.hardware import default_server, gtx_1080
from repro.relational import agg_count, agg_sum, col, lit, scan
from repro.stats import (
    CONJUNCTION_FLOOR,
    CardinalityEstimator,
    Histogram,
    collect_table_statistics,
    q_error,
)
from repro.storage import Catalog, Table, generate_tpch
from repro.workloads.tpch_queries import all_queries


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------
class TestHistogram:
    def test_cdf_linear_interpolation(self):
        h = Histogram(edges=(0.0, 10.0, 20.0), counts=(5, 5), total=10)
        assert h.cdf(-1.0) == 0.0
        assert h.cdf(0.0) == 0.0
        assert h.cdf(5.0) == pytest.approx(0.25)
        assert h.cdf(10.0) == pytest.approx(0.5)
        assert h.cdf(20.0) == 1.0
        assert h.cdf(25.0) == 1.0

    def test_mass_between_clamps_to_unit_interval(self):
        h = Histogram(edges=(0.0, 10.0, 20.0), counts=(5, 5), total=10)
        assert h.mass_between(5.0, 15.0) == pytest.approx(0.5)
        assert h.mass_between(None, None) == pytest.approx(1.0)
        assert h.mass_between(15.0, 5.0) == 0.0  # inverted bounds clamp
        assert h.mass_between(-10.0, 30.0) == pytest.approx(1.0)

    def test_point_mass_constant_column(self):
        h = Histogram(edges=(7.0, 7.0), counts=(4,), total=4)
        assert h.cdf(6.999) == 0.0
        assert h.cdf(7.0) == 1.0
        assert h.mass_between(7.0, 7.0) == 1.0
        assert h.mass_between(8.0, 9.0) == 0.0
        assert h.mass_between(None, 6.0) == 0.0

    def test_empty_histogram_answers_zero(self):
        h = Histogram(edges=(0.0, 0.0), counts=(0,), total=0)
        assert h.cdf(0.0) == 0.0
        assert h.mass_between(None, None) == 0.0


# ----------------------------------------------------------------------
# Collection edge cases
# ----------------------------------------------------------------------
class TestCollection:
    def test_constant_column_degenerates_to_zero_width_bin(self):
        table = Table.from_arrays("t", {
            "c": np.full(50, 3.5, dtype=np.float64)})
        stats = collect_table_statistics(table).column("c")
        assert stats.min_value == stats.max_value == 3.5
        assert stats.histogram is not None
        assert stats.histogram.edges == (3.5, 3.5)
        assert stats.histogram.counts == (50,)
        assert stats.ndv == 1

    def test_empty_table_has_counts_but_no_histogram(self):
        table = Table.from_arrays("e", {
            "x": np.array([], dtype=np.float64)})
        stats = collect_table_statistics(table).column("x")
        assert stats.num_rows == 0
        assert stats.ndv == 0
        assert stats.min_value is None
        assert stats.histogram is None

    def test_all_nan_column_has_no_range(self):
        table = Table.from_arrays("n", {
            "x": np.full(8, np.nan, dtype=np.float64)})
        stats = collect_table_statistics(table).column("x")
        assert stats.min_value is None
        assert stats.histogram is None

    def test_nans_excluded_from_range_and_mass(self):
        table = Table.from_arrays("m", {
            "x": np.array([1.0, 2.0, np.nan, np.nan])})
        stats = collect_table_statistics(table).column("x")
        assert (stats.min_value, stats.max_value) == (1.0, 2.0)
        assert stats.histogram.total == 2
        assert sum(stats.histogram.counts) == 2
        assert stats.histogram.mass_between(None, None) == pytest.approx(1.0)

    def test_infinities_count_toward_total_but_not_bins(self):
        table = Table.from_arrays("i", {
            "x": np.array([1.0, 2.0, np.inf])})
        stats = collect_table_statistics(table).column("x")
        assert (stats.min_value, stats.max_value) == (1.0, 2.0)
        assert stats.histogram.total == 3
        assert sum(stats.histogram.counts) == 2
        # The infinite value is "somewhere above every bin": range mass
        # over the finite span stays a fraction of all non-NaN values.
        assert stats.histogram.mass_between(None, None) == pytest.approx(2 / 3)

    def test_ndv_exact_below_sampling_threshold(self):
        table = Table.from_arrays("k", {
            "key": np.arange(1000, dtype=np.int64),
            "grp": np.repeat(np.arange(10, dtype=np.int64), 100)})
        stats = collect_table_statistics(table)
        assert stats.column("key").ndv == 1000
        assert stats.column("grp").ndv == 10

    def test_collection_is_deterministic(self):
        rng = np.random.default_rng(11)
        values = rng.integers(0, 500_000, 300_000, dtype=np.int64)
        table = Table.from_arrays("big", {"v": values})
        first = collect_table_statistics(table)
        second = collect_table_statistics(table)
        assert first.column("v").ndv == second.column("v").ndv
        assert first.column("v").histogram == second.column("v").histogram


# ----------------------------------------------------------------------
# Estimator rules
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def synthetic_catalog():
    catalog = Catalog()
    catalog.register(Table.from_arrays("t", {
        "x": np.arange(1000, dtype=np.int64),
        "y": np.repeat(np.arange(10, dtype=np.int64), 100)}))
    return catalog


@pytest.fixture(scope="module")
def estimator(synthetic_catalog):
    return CardinalityEstimator(synthetic_catalog)


class TestEstimatorRules:
    def test_equality_selects_one_over_ndv(self, estimator):
        assert estimator.estimate_rows(
            scan("t").filter(col("y") == lit(5))) == 100
        assert estimator.estimate_rows(
            scan("t").filter(col("x") == lit(17))) == 1

    def test_equality_outside_range_selects_nothing(self, estimator):
        assert estimator.estimate_rows(
            scan("t").filter(col("x") == lit(5000))) == 0

    def test_range_estimates_are_monotone_in_the_literal(self, estimator):
        estimates = [estimator.estimate_rows(
            scan("t").filter(col("x") < lit(k)))
            for k in range(0, 1100, 100)]
        assert estimates == sorted(estimates)
        assert estimates[0] == 0
        assert estimates[-1] == 1000
        # Uniform data: equi-width bins put the estimate within one bin
        # width of the truth.
        assert estimator.estimate_rows(
            scan("t").filter(col("x") < lit(250))) == pytest.approx(250, abs=16)

    def test_conjunctions_damp_at_the_floor(self, estimator):
        rel = estimator.table_estimate("t")
        predicate = col("y") == lit(5)
        for _ in range(9):
            predicate = predicate & (col("y") == lit(5))
        sel, backed = estimator.selectivity(predicate, rel)
        assert backed
        # Independence would say 0.1 ** 10 = 1e-10; the floor holds it up.
        assert sel == pytest.approx(CONJUNCTION_FLOOR)

    def test_zero_conjunct_still_zeroes_the_conjunction(self, estimator):
        rel = estimator.table_estimate("t")
        sel, backed = estimator.selectivity(
            (col("y") == lit(5)) & (col("x") == lit(5000)), rel)
        assert backed
        assert sel == 0.0

    def test_negation_complements(self, estimator):
        rel = estimator.table_estimate("t")
        sel, _ = estimator.selectivity(~(col("y") == lit(5)), rel)
        assert sel == pytest.approx(0.9)

    def test_unresolvable_predicate_is_not_backed(self, estimator):
        rel = estimator.table_estimate("t")
        _, backed = estimator.selectivity(
            (col("x") + lit(1)) > lit(0), rel)
        assert not backed
        estimate = estimator.estimate(
            scan("t").filter((col("x") + lit(1)) > lit(0)))
        assert not estimate.backed

    def test_unregistered_table_is_not_backed(self, estimator):
        estimate = estimator.estimate(scan("nowhere"))
        assert not estimate.backed

    def test_group_by_outputs_key_ndv(self, estimator):
        assert estimator.estimate_rows(
            scan("t").aggregate(["y"], [agg_count("c")])) == 10
        assert estimator.estimate_rows(
            scan("t").aggregate([], [agg_sum(col("x"), "s")])) == 1


class TestJoinEstimates:
    @pytest.fixture(scope="class")
    def tpch_estimator(self, tpch_dataset):
        catalog = Catalog()
        for table in tpch_dataset.tables.values():
            catalog.register(table)
        return CardinalityEstimator(catalog), tpch_dataset

    def test_fk_join_estimates_the_probe_side(self, tpch_estimator):
        estimator, dataset = tpch_estimator
        lineitem_rows = dataset.table("lineitem").num_rows
        plan = scan("orders", ["o_orderkey"]).join(
            scan("lineitem", ["l_orderkey", "l_extendedprice"]),
            ["o_orderkey"], ["l_orderkey"])
        # Containment: |O| * |L| / ndv(o_orderkey) = |L| exactly (NDV is
        # exact below the sampling threshold).
        assert estimator.estimate_rows(plan) == pytest.approx(
            lineitem_rows, rel=0.05)

    def test_selective_build_scales_the_join_down(self, tpch_estimator):
        estimator, dataset = tpch_estimator
        lineitem_rows = dataset.table("lineitem").num_rows
        full = scan("orders", ["o_orderkey"]).join(
            scan("lineitem", ["l_orderkey"]), ["o_orderkey"], ["l_orderkey"])
        half = scan("orders", ["o_orderkey"]).filter(
            col("o_orderkey") <= lit(3750)).join(
            scan("lineitem", ["l_orderkey"]), ["o_orderkey"], ["l_orderkey"])
        full_rows = estimator.estimate_rows(full)
        half_rows = estimator.estimate_rows(half)
        assert half_rows < full_rows
        assert half_rows == pytest.approx(lineitem_rows / 2, rel=0.2)

    def test_working_set_charges_builds_and_peak(self, tpch_estimator):
        estimator, _ = tpch_estimator
        plan = scan("orders", ["o_orderkey"]).join(
            scan("lineitem", ["l_orderkey", "l_extendedprice"]),
            ["o_orderkey"], ["l_orderkey"])
        ws = estimator.working_set(plan)
        assert ws.backed
        assert ws.build_bytes > 0
        assert ws.largest_build_bytes == ws.build_bytes
        assert ws.total_bytes == ws.peak_intermediate_bytes + ws.build_bytes
        selective = scan("orders", ["o_orderkey"]).filter(
            col("o_orderkey") == lit(1)).join(
            scan("lineitem", ["l_orderkey", "l_extendedprice"]),
            ["o_orderkey"], ["l_orderkey"])
        assert estimator.working_set(selective).total_bytes < ws.total_bytes


class TestQError:
    def test_q_error_is_symmetric_and_floored(self):
        assert q_error(10, 10) == 1.0
        assert q_error(100, 25) == 4.0
        assert q_error(25, 100) == 4.0
        assert q_error(0, 0) == 1.0  # both floored at one row
        assert q_error(0.2, 1) == 1.0


# ----------------------------------------------------------------------
# Estimation quality on TPC-H
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sf05_engine():
    dataset = generate_tpch(scale_factor=0.05, seed=2019)
    engine = HAPEEngine(default_server())
    engine.register_dataset(dataset.tables)
    return engine, dataset


class TestTPCHQuality:
    def test_median_q_error_at_most_four_on_every_query(self, sf05_engine):
        engine, dataset = sf05_engine
        for name, query in all_queries(dataset).items():
            result = engine.execute(query.plan, "hybrid")
            report = result.cardinality
            assert report.operators, f"{name} recorded no operators"
            assert report.median_q_error <= 4.0, (
                f"{name}: median q-error {report.median_q_error:.2f}\n"
                + report.describe())

    def test_estimates_never_change_results(self, sf05_engine):
        engine, dataset = sf05_engine
        legacy = HAPEEngine(
            default_server(),
            optimizer_options=OptimizerOptions(use_statistics=False))
        legacy.register_dataset(dataset.tables)
        for name, query in all_queries(dataset).items():
            stats_result = engine.execute(query.plan, "hybrid")
            legacy_result = legacy.execute(query.plan, "hybrid")
            for column in stats_result.table.column_names:
                assert (stats_result.table.array(column).tobytes()
                        == legacy_result.table.array(column).tobytes()), (
                    f"{name}: column {column} diverged with statistics on")


# ----------------------------------------------------------------------
# Lifecycle: statistics live and die with the table
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_register_collects_and_replace_swaps(self):
        catalog = Catalog()
        catalog.register(Table.from_arrays("t", {
            "v": np.repeat(np.arange(4, dtype=np.int64), 25)}))
        assert catalog.statistics("t").column("v").ndv == 4
        first_version = catalog.version("t")
        catalog.register(Table.from_arrays("t", {
            "v": np.arange(100, dtype=np.int64)}), replace=True)
        assert catalog.statistics("t").column("v").ndv == 100
        assert catalog.version("t") > first_version

    def test_drop_retires_statistics(self):
        catalog = Catalog()
        catalog.register(Table.from_arrays("t", {
            "v": np.arange(10, dtype=np.int64)}))
        catalog.drop("t")
        with pytest.raises(CatalogError):
            catalog.statistics("t")

    def test_replace_changes_the_estimate(self):
        catalog = Catalog()
        estimator = CardinalityEstimator(catalog)
        plan = scan("t").filter(col("v") == lit(1))
        catalog.register(Table.from_arrays("t", {
            "v": np.repeat(np.arange(2, dtype=np.int64), 50)}))
        assert estimator.estimate_rows(plan) == 50
        catalog.register(Table.from_arrays("t", {
            "v": np.arange(100, dtype=np.int64)}), replace=True)
        assert estimator.estimate_rows(plan) == 1


# ----------------------------------------------------------------------
# Refusal contract (the Q9 satellite): plan-time refusal needs backing
# ----------------------------------------------------------------------
class TestBackedRefusal:
    @pytest.fixture()
    def tiny_gpu_topology(self):
        return default_server(gpu_spec=gtx_1080().with_memory_capacity(
            64 * 1024))

    def test_backed_overflow_refused_at_plan_time(self, tiny_gpu_topology,
                                                  tpch_dataset):
        engine = HAPEEngine(tiny_gpu_topology)
        engine.register_dataset(tpch_dataset.tables)
        plan = scan("orders").join(
            scan("lineitem", ["l_orderkey", "l_extendedprice"]),
            ["o_orderkey"], ["l_orderkey"])
        with pytest.raises(OptimizerError, match="exceeds GPU memory"):
            engine.plan(plan, "gpu")

    def test_unbacked_overflow_defers_to_the_executor(self, tiny_gpu_topology,
                                                      tpch_dataset):
        engine = HAPEEngine(tiny_gpu_topology)
        engine.register_dataset(tpch_dataset.tables)
        # The computed LHS makes the filter unresolvable, so the build
        # estimate is a guess — not grounds for plan-time refusal.  The
        # true build overflows the 64 KB device at run time instead.
        plan = (scan("orders")
                .filter((col("o_orderkey") + lit(0)) >= lit(0))
                .join(scan("lineitem", ["l_orderkey", "l_extendedprice"]),
                      ["o_orderkey"], ["l_orderkey"]))
        physical = engine.plan(plan, "gpu")  # plan-time: accepted
        assert physical is not None
        with pytest.raises(OutOfDeviceMemoryError, match="gpu"):
            engine.execute(plan, "gpu")

    def test_legacy_heuristics_keep_refusing(self, tiny_gpu_topology,
                                             tpch_dataset):
        engine = HAPEEngine(
            tiny_gpu_topology,
            optimizer_options=OptimizerOptions(use_statistics=False))
        engine.register_dataset(tpch_dataset.tables)
        plan = (scan("orders")
                .filter((col("o_orderkey") + lit(0)) >= lit(0))
                .join(scan("lineitem", ["l_orderkey", "l_extendedprice"]),
                      ["o_orderkey"], ["l_orderkey"]))
        with pytest.raises(OptimizerError, match="exceeds GPU memory"):
            engine.plan(plan, "gpu")


# ----------------------------------------------------------------------
# Session-level auto mode
# ----------------------------------------------------------------------
class TestAutoMode:
    def test_small_queries_stay_on_cpus(self, engine):
        plan = scan("region").aggregate([], [agg_count("c")])
        assert engine.resolve_mode(plan, "auto") is ExecutionMode.CPU_ONLY

    def test_large_scans_offload_when_they_fit(self, engine, monkeypatch):
        # The SF 0.005 test dataset never clears the real 32 MB PCIe
        # amortization bar; lower it to observe the offload decision.
        monkeypatch.setattr("repro.engine.optimizer.GPU_OFFLOAD_MIN_BYTES",
                            1024)
        plan = (scan("lineitem", ["l_orderkey", "l_extendedprice"])
                .filter(col("l_orderkey") > lit(0))
                .aggregate([], [agg_sum(col("l_extendedprice"), "s")]))
        assert engine.resolve_mode(plan, "auto") is ExecutionMode.GPU_ONLY

    def test_oversized_working_sets_coprocess(self, tpch_dataset):
        tiny = default_server(gpu_spec=gtx_1080().with_memory_capacity(
            64 * 1024))
        engine = HAPEEngine(tiny)
        engine.register_dataset(tpch_dataset.tables)
        plan = scan("orders").join(
            scan("lineitem", ["l_orderkey", "l_extendedprice"]),
            ["o_orderkey"], ["l_orderkey"])
        assert engine.resolve_mode(plan, "auto") is ExecutionMode.HYBRID

    def test_unbacked_estimates_hedge_to_hybrid(self, engine):
        plan = (scan("lineitem", ["l_orderkey", "l_quantity"])
                .filter((col("l_quantity") + lit(0.0)) > lit(0.0))
                .aggregate([], [agg_count("c")]))
        assert engine.resolve_mode(plan, "auto") is ExecutionMode.HYBRID

    def test_auto_resolution_executes_end_to_end(self, engine):
        plan = scan("nation").aggregate([], [agg_count("c")])
        result = engine.execute(plan, "auto")
        assert result.mode is ExecutionMode.CPU_ONLY
        assert result.table.num_rows == 1
