"""Tests for the TPC-H data generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage import (
    BASE_CARDINALITIES,
    NATIONS,
    REGIONS,
    generate_tpch,
    tpch_cardinalities,
    working_set_bytes,
)


class TestCardinalities:
    def test_fixed_tables_ignore_scale_factor(self):
        counts = tpch_cardinalities(0.001)
        assert counts["region"] == 5
        assert counts["nation"] == 25

    def test_scaling_tables_follow_scale_factor(self):
        sf1 = tpch_cardinalities(1.0)
        sf2 = tpch_cardinalities(2.0)
        assert sf1["lineitem"] == BASE_CARDINALITIES["lineitem"]
        assert sf2["orders"] == 2 * sf1["orders"]

    def test_invalid_scale_factor(self):
        with pytest.raises(ValueError):
            tpch_cardinalities(0.0)

    def test_sf100_working_sets_match_paper_range(self):
        """The paper reports 15-27 GB working sets per query at SF 100."""
        q1 = working_set_bytes(100.0, ["lineitem"])
        q5 = working_set_bytes(
            100.0, ["lineitem", "orders", "customer", "supplier",
                    "nation", "region"])
        assert 10e9 < q1 < 40e9
        assert 15e9 < q5 < 45e9


class TestGeneratedData:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_tpch(scale_factor=0.01, seed=11)

    def test_all_tables_present(self, dataset):
        assert set(dataset.tables) == set(BASE_CARDINALITIES)

    def test_nations_and_regions(self, dataset):
        nation = dataset.table("nation")
        region = dataset.table("region")
        assert nation.num_rows == len(NATIONS)
        assert region.num_rows == len(REGIONS)
        assert set(nation.array("n_regionkey")) <= set(region.array("r_regionkey"))

    def test_foreign_keys_are_valid(self, dataset):
        lineitem = dataset.table("lineitem")
        orders = dataset.table("orders")
        customer = dataset.table("customer")
        supplier = dataset.table("supplier")
        assert lineitem.array("l_orderkey").max() <= orders.num_rows
        assert lineitem.array("l_orderkey").min() >= 1
        assert orders.array("o_custkey").max() <= customer.num_rows
        assert lineitem.array("l_suppkey").max() <= supplier.num_rows

    def test_lineitem_joins_partsupp(self, dataset):
        """Every (l_partkey, l_suppkey) pair exists in partsupp (Q9 needs it)."""
        partsupp = dataset.table("partsupp")
        lineitem = dataset.table("lineitem")
        pairs = set(zip(partsupp.array("ps_partkey").tolist(),
                        partsupp.array("ps_suppkey").tolist()))
        sample = list(zip(lineitem.array("l_partkey")[:500].tolist(),
                          lineitem.array("l_suppkey")[:500].tolist()))
        assert all(pair in pairs for pair in sample)

    def test_dates_are_valid_yyyymmdd(self, dataset):
        shipdates = dataset.table("lineitem").array("l_shipdate")
        years = shipdates // 10000
        months = (shipdates // 100) % 100
        days = shipdates % 100
        assert years.min() >= 1992 and years.max() <= 1998
        assert months.min() >= 1 and months.max() <= 12
        assert days.min() >= 1 and days.max() <= 31

    def test_shipdate_follows_orderdate(self, dataset):
        lineitem = dataset.table("lineitem")
        orders = dataset.table("orders")
        orderdate = orders.array("o_orderdate")[lineitem.array("l_orderkey") - 1]
        assert bool(np.all(lineitem.array("l_shipdate") >= orderdate))

    def test_value_ranges(self, dataset):
        lineitem = dataset.table("lineitem")
        assert lineitem.array("l_quantity").min() >= 1
        assert lineitem.array("l_quantity").max() <= 50
        assert lineitem.array("l_discount").min() >= 0.0
        assert lineitem.array("l_discount").max() <= 0.10 + 1e-9
        assert lineitem.array("l_tax").max() <= 0.08 + 1e-9
        assert set(lineitem.column("l_returnflag").decoded()) <= {"A", "N", "R"}
        assert set(lineitem.column("l_linestatus").decoded()) <= {"F", "O"}

    def test_deterministic_generation(self):
        first = generate_tpch(0.002, seed=5)
        second = generate_tpch(0.002, seed=5)
        assert first.table("lineitem").equals(second.table("lineitem"))

    def test_total_bytes_positive(self, dataset):
        assert dataset.total_bytes > 0
