"""Tests for every join algorithm against the semantic reference."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExecutionError
from repro.operators import (
    GpuJoinConfig,
    coprocessed_radix_join,
    cpu_radix_join,
    gpu_partitioned_join,
    join_match_indices,
    max_fanout,
    non_partitioned_join,
    plan_partition_passes,
    probe_phase_cost,
    radix_partition,
)
from repro.relational import join_indices
from repro.storage import make_join_pair, make_partial_match_pair


def _sorted_pairs(build_idx, probe_idx):
    return sorted(zip(build_idx.tolist(), probe_idx.tolist()))


class TestJoinMatchIndices:
    def test_matches_reference_on_duplicates(self):
        build = np.asarray([1, 2, 2, 3, 5])
        probe = np.asarray([2, 2, 3, 4, 1, 1])
        got = join_match_indices(build, probe)
        expected = join_indices([build], [probe])
        assert _sorted_pairs(*got) == _sorted_pairs(*expected)

    def test_empty_inputs(self):
        build_idx, probe_idx = join_match_indices(np.asarray([]), np.asarray([1, 2]))
        assert len(build_idx) == 0 and len(probe_idx) == 0

    @given(st.lists(st.integers(min_value=0, max_value=20), max_size=60),
           st.lists(st.integers(min_value=0, max_value=20), max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_matches_reference_property(self, build, probe):
        build = np.asarray(build, dtype=np.int64)
        probe = np.asarray(probe, dtype=np.int64)
        got = join_match_indices(build, probe)
        expected = join_indices([build], [probe])
        assert _sorted_pairs(*got) == _sorted_pairs(*expected)


class TestPartitioning:
    def test_radix_partition_preserves_rows(self, cpu):
        workload = make_join_pair(3_000, seed=5)
        parts, cost = radix_partition(workload.build.arrays(), cpu,
                                      key="key", fanout=16)
        assert len(parts) == 16
        assert sum(len(part["key"]) for part in parts) == 3_000
        assert cost.seconds > 0
        # Every tuple landed in the partition its key maps to.
        for index, part in enumerate(parts):
            if len(part["key"]):
                assert set(np.asarray(part["key"]) % 16) == {index}

    def test_partition_plan_respects_device_limits(self, cpu, gpu):
        cpu_plan = plan_partition_passes(100_000_000, 16, cpu.spec)
        gpu_plan = plan_partition_passes(100_000_000, 16, gpu.spec)
        assert all(f <= max_fanout(cpu.spec) for f in cpu_plan.fanout_per_pass)
        assert all(f <= max_fanout(gpu.spec) for f in gpu_plan.fanout_per_pass)
        # The final partitions fit in the target memory of each device.
        assert cpu_plan.final_partition_tuples * 16 * 2 \
            <= cpu.spec.cache("L2").capacity_bytes * 1.01
        assert gpu_plan.final_partition_tuples * 16 * 2 \
            <= gpu.spec.scratchpad.capacity_bytes * 1.01

    def test_multi_pass_needed_for_large_inputs(self, cpu):
        small = plan_partition_passes(100_000, 16, cpu.spec)
        large = plan_partition_passes(1_000_000_000, 16, cpu.spec)
        assert large.num_passes >= small.num_passes
        assert large.num_passes >= 2

    def test_invalid_inputs(self, cpu):
        with pytest.raises(ValueError):
            plan_partition_passes(0, 16, cpu.spec)
        with pytest.raises(ValueError):
            radix_partition({"key": np.arange(5)}, cpu, key="key", fanout=0)


class TestJoinAlgorithms:
    @pytest.fixture(scope="class")
    def workload(self):
        return make_join_pair(8_000, seed=13)

    def _reference_rows(self, workload):
        return workload.expected_matches

    def test_non_partitioned_join(self, workload, cpu):
        result = non_partitioned_join(workload.build.arrays(),
                                      workload.probe.arrays(), cpu,
                                      build_keys=["key"], probe_keys=["key"])
        assert result.num_rows == self._reference_rows(workload)
        assert result.cost.seconds > 0

    def test_cpu_radix_join_matches_non_partitioned(self, workload, cpu):
        radix = cpu_radix_join(workload.build.arrays(), workload.probe.arrays(),
                               cpu, build_keys=["key"], probe_keys=["key"])
        plain = non_partitioned_join(workload.build.arrays(),
                                     workload.probe.arrays(), cpu,
                                     build_keys=["key"], probe_keys=["key"])
        assert radix.num_rows == plain.num_rows
        assert (np.sort(radix.columns["payload"])
                == np.sort(plain.columns["payload"])).all()

    def test_gpu_partitioned_join(self, workload, gpu):
        result = gpu_partitioned_join(workload.build.arrays(),
                                      workload.probe.arrays(), gpu,
                                      build_keys=["key"], probe_keys=["key"])
        assert result.num_rows == self._reference_rows(workload)

    def test_join_algorithms_validate_device_kind(self, workload, cpu, gpu):
        with pytest.raises(ValueError):
            gpu_partitioned_join(workload.build.arrays(),
                                 workload.probe.arrays(), cpu,
                                 build_keys=["key"], probe_keys=["key"])
        with pytest.raises(ValueError):
            cpu_radix_join(workload.build.arrays(), workload.probe.arrays(),
                           gpu, build_keys=["key"], probe_keys=["key"])

    def test_gpu_join_memory_enforcement(self, workload, topology):
        gpu = topology.device("gpu0")
        gpu.allocate(gpu.memory.free_bytes - 1024)  # nearly fill the GPU
        with pytest.raises(ExecutionError):
            gpu_partitioned_join(workload.build.arrays(),
                                 workload.probe.arrays(), gpu,
                                 build_keys=["key"], probe_keys=["key"])

    def test_partial_match_join(self, cpu):
        workload = make_partial_match_pair(2_000, 1_500, match_fraction=0.4,
                                           seed=21)
        result = non_partitioned_join(workload.build.arrays(),
                                      workload.probe.arrays(), cpu,
                                      build_keys=["key"], probe_keys=["key"])
        assert result.num_rows == workload.expected_matches

    def test_coprocessed_join(self, workload, topology):
        result = coprocessed_radix_join(
            workload.build.arrays(), workload.probe.arrays(), topology,
            build_keys=["key"], probe_keys=["key"])
        assert result.num_rows == self._reference_rows(workload)
        # PCIe links were actually used.
        moved = sum(link.bytes_moved for link in topology.links)
        assert moved > 0

    def test_coprocessed_join_requires_gpu(self, workload):
        from repro.hardware import cpu_only_server
        with pytest.raises(ExecutionError):
            coprocessed_radix_join(
                workload.build.arrays(), workload.probe.arrays(),
                cpu_only_server(), build_keys=["key"], probe_keys=["key"])

    @given(st.integers(min_value=1, max_value=400),
           st.integers(min_value=1, max_value=400))
    @settings(max_examples=20, deadline=None)
    def test_all_algorithms_agree_property(self, build_rows, probe_rows):
        """Property: every join algorithm returns the same multiset of rows."""
        from repro.hardware import default_server
        topology = default_server()
        cpu, gpu = topology.device("cpu0"), topology.device("gpu0")
        workload = make_partial_match_pair(build_rows, probe_rows,
                                           match_fraction=0.5, seed=1)
        build, probe = workload.build.arrays(), workload.probe.arrays()
        keys = dict(build_keys=["key"], probe_keys=["key"])
        results = [
            non_partitioned_join(build, probe, cpu, **keys),
            cpu_radix_join(build, probe, cpu, **keys),
            gpu_partitioned_join(build, probe, gpu, **keys),
        ]
        row_counts = {result.num_rows for result in results}
        assert len(row_counts) == 1


class TestProbePhaseCost:
    def test_scratchpad_beats_l1(self, gpu):
        for partition in (512, 1024, 4096):
            sm = probe_phase_cost(gpu, 32_000_000, partition, variant="SM")
            l1 = probe_phase_cost(gpu, 32_000_000, partition, variant="L1")
            assert sm.seconds < l1.seconds

    def test_invalid_variant(self, gpu):
        with pytest.raises(ValueError):
            probe_phase_cost(gpu, 1000, 128, variant="L2")
        with pytest.raises(ValueError):
            GpuJoinConfig(probe_variant="bogus")

    def test_requires_gpu(self, cpu):
        with pytest.raises(ValueError):
            probe_phase_cost(cpu, 1000, 128, variant="SM")


class TestCanonicalJoinOutputOrder:
    """Every join kernel emits the documented canonical row order.

    ``output_order="probe"`` (the default) orders matches by probe
    position with ties by ascending build position — exactly the order of
    :func:`repro.relational.join_indices` — so the partitioned joins,
    whose passes shuffle rows bucket-major, must agree row for row with
    the non-partitioned hash join.  ``"build"`` is the mirrored order the
    executor requests when the optimizer made the logical *right* input
    the build side.
    """

    @staticmethod
    def _inputs(seed: int = 11, rows: int = 400):
        rng = np.random.default_rng(seed)
        build = {"bk": rng.integers(0, 40, rows, dtype=np.int64),
                 "bv": rng.normal(size=rows)}
        probe = {"pk": rng.integers(0, 40, rows + 77, dtype=np.int64),
                 "pv": rng.normal(size=rows + 77)}
        return build, probe

    def _expected(self, build, probe, *, order: str):
        build_idx, probe_idx = join_indices([build["bk"]], [probe["pk"]])
        if order == "build":
            perm = np.lexsort((probe_idx, build_idx))
            build_idx, probe_idx = build_idx[perm], probe_idx[perm]
        return {"bk": build["bk"][build_idx], "bv": build["bv"][build_idx],
                "pk": probe["pk"][probe_idx], "pv": probe["pv"][probe_idx]}

    @pytest.mark.parametrize("order", ["probe", "build"])
    @pytest.mark.parametrize("morsel_rows", [None, 37])
    def test_hash_join_kernel_orders(self, order, morsel_rows):
        from repro.operators import hash_join_kernel
        build, probe = self._inputs()
        columns, stats = hash_join_kernel(
            build, probe, build_keys=["bk"], probe_keys=["pk"],
            morsel_rows=morsel_rows, output_order=order)
        expected = self._expected(build, probe, order=order)
        for name in expected:
            np.testing.assert_array_equal(columns[name], expected[name])
        assert stats.output_nbytes == sum(v.nbytes
                                          for v in expected.values())

    @pytest.mark.parametrize("order", ["probe", "build"])
    def test_partitioned_kernels_match_reference_order(self, cpu, gpu,
                                                       order):
        from repro.operators import (cpu_radix_join_kernel,
                                     gpu_partitioned_join_kernel)
        build, probe = self._inputs()
        expected = self._expected(build, probe, order=order)
        for kernel, spec in ((cpu_radix_join_kernel, cpu.spec),
                             (gpu_partitioned_join_kernel, gpu.spec)):
            columns, _ = kernel(build, probe, build_keys=["bk"],
                                probe_keys=["pk"], spec=spec,
                                output_order=order)
            assert not any(name.startswith("__ord") for name in columns)
            for name in expected:
                np.testing.assert_array_equal(
                    columns[name], expected[name],
                    err_msg=f"{kernel.__name__} order={order} col={name}")

    def test_coprocessed_join_matches_reference_order(self, topology):
        build, probe = self._inputs(rows=3000)
        expected = self._expected(build, probe, order="probe")
        output = coprocessed_radix_join(
            build, probe, topology, build_keys=["bk"], probe_keys=["pk"])
        for name in expected:
            np.testing.assert_array_equal(output.columns[name],
                                          expected[name])

    def test_order_never_changes_stats_or_costs(self, cpu):
        from repro.operators import cpu_radix_join_kernel
        build, probe = self._inputs()
        stats = {}
        for order in ("probe", "build", None):
            _, stats[order] = cpu_radix_join_kernel(
                build, probe, build_keys=["bk"], probe_keys=["pk"],
                spec=cpu.spec, output_order=order)
        assert stats["probe"] == stats["build"] == stats[None]

    def test_invalid_output_order_rejected(self, cpu):
        from repro.operators import cpu_radix_join_kernel, hash_join_kernel
        build, probe = self._inputs(rows=8)
        with pytest.raises(ValueError, match="output_order"):
            hash_join_kernel(build, probe, build_keys=["bk"],
                             probe_keys=["pk"], output_order="bucket")
        with pytest.raises(ValueError, match="output_order"):
            cpu_radix_join_kernel(build, probe, build_keys=["bk"],
                                  probe_keys=["pk"], spec=cpu.spec,
                                  output_order="bucket")

    def test_optimizer_sets_swapped_flag(self, tpch_dataset):
        """The smaller side builds; ``swapped`` marks a logical-right probe
        ... i.e. a logical-left probe (build = logical right)."""
        from repro.engine import HAPEEngine
        from repro.hardware import default_server
        from repro.relational import scan
        from repro.relational.physical import PJoin

        engine = HAPEEngine(default_server())
        engine.register_dataset(tpch_dataset.tables)
        small_left = scan("region").join(scan("nation"),
                                         ["r_regionkey"], ["n_regionkey"])
        big_left = scan("nation").join(scan("region"),
                                       ["n_regionkey"], ["r_regionkey"])
        for plan, swapped in ((small_left, False), (big_left, True)):
            physical = engine.plan(plan, "cpu")
            joins = [node for node in physical.walk()
                     if isinstance(node, PJoin)]
            assert len(joins) == 1
            assert joins[0].swapped is swapped
