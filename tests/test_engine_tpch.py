"""Integration tests: the HAPE engine on the paper's TPC-H queries.

Every query of Section 6.4 (Q1, Q5, Q6, Q9*) is executed in all three
configurations (CPU-only, GPU-only, hybrid) and the functional results are
checked against the reference executor.
"""

from __future__ import annotations

import pytest

from repro.engine import ExecutionMode, HAPEEngine
from repro.errors import OptimizerError
from repro.hardware import cpu_only_server, default_server
from repro.relational import (
    JoinAlgorithm,
    agg_sum,
    col,
    count_operators,
    execute_logical,
    lit,
    scan,
)
from repro.workloads import EVALUATED_QUERIES, all_queries, build_query

MODES = ("cpu", "gpu", "hybrid")


class TestTPCHCorrectness:
    @pytest.mark.parametrize("query_name", EVALUATED_QUERIES)
    @pytest.mark.parametrize("mode", MODES)
    def test_query_matches_reference(self, engine, tpch_dataset, query_name, mode):
        query = build_query(query_name, tpch_dataset)
        reference = execute_logical(query.plan, engine.catalog)
        result = engine.execute(query.plan, mode)
        assert result.table.equals(reference, check_order=False)
        assert result.simulated_seconds > 0.0

    def test_q1_has_four_groups(self, engine, tpch_dataset):
        query = build_query("Q1", tpch_dataset)
        result = engine.execute(query.plan, "hybrid")
        assert 3 <= result.table.num_rows <= 4
        assert "sum_disc_price" in result.table.column_names

    def test_q6_returns_single_revenue_value(self, engine, tpch_dataset):
        query = build_query("Q6", tpch_dataset)
        result = engine.execute(query.plan, "cpu")
        assert result.table.num_rows == 1
        assert float(result.table.array("revenue")[0]) > 0.0

    def test_q5_groups_are_asian_nations(self, engine, tpch_dataset):
        query = build_query("Q5", tpch_dataset)
        result = engine.execute(query.plan, "hybrid")
        asia_nations = {
            code for code, (name, region) in enumerate(
                zip(tpch_dataset.table("nation").column("n_name").decoded(),
                    [r for _, r in __import__("repro.storage.tpch",
                                              fromlist=["NATIONS"]).NATIONS]))
            if region == "ASIA"
        }
        # All reported nation codes must map to nations in ASIA.
        dictionary = tpch_dataset.table("nation").column("n_name").dictionary
        names = tpch_dataset.table("nation").column("n_name").decoded()
        regions = [r for _, r in __import__("repro.storage.tpch",
                                            fromlist=["NATIONS"]).NATIONS]
        asia_codes = {dictionary.code(name) for name, region
                      in zip(names, regions) if region == "ASIA"}
        assert set(result.table.array("n_name").tolist()) <= asia_codes

    def test_q9_groups_by_nation_and_year(self, engine, tpch_dataset):
        query = build_query("Q9", tpch_dataset)
        result = engine.execute(query.plan, "cpu")
        assert "o_year" in result.table.column_names
        years = set(result.table.array("o_year").tolist())
        assert years <= set(range(1992, 1999))


class TestModesAndTiming:
    def test_all_queries_run_in_all_modes(self, engine, tpch_dataset):
        for query in all_queries(tpch_dataset).values():
            times = {mode: engine.execute(query.plan, mode).simulated_seconds
                     for mode in MODES}
            assert all(seconds > 0 for seconds in times.values())

    def test_gpu_mode_moves_bytes_over_pcie(self, engine, tpch_dataset):
        query = build_query("Q6", tpch_dataset)
        result = engine.execute(query.plan, "gpu")
        assert sum(result.link_bytes.values()) > 0

    def test_cpu_mode_uses_no_gpu_time(self, engine, tpch_dataset):
        query = build_query("Q6", tpch_dataset)
        result = engine.execute(query.plan, "cpu")
        assert result.device_busy.get("gpu0", 0.0) == 0.0
        assert result.device_busy.get("cpu0", 0.0) > 0.0

    def test_hybrid_uses_both_device_kinds(self, engine, tpch_dataset):
        query = build_query("Q1", tpch_dataset)
        result = engine.execute(query.plan, "hybrid")
        assert result.device_busy.get("cpu0", 0.0) > 0.0
        assert result.device_busy.get("gpu0", 0.0) > 0.0

    def test_query_result_describe(self, engine, tpch_dataset):
        result = engine.execute(build_query("Q6", tpch_dataset).plan, "hybrid")
        text = result.describe()
        assert "mode=hybrid" in text
        assert "rows=1" in text

    def test_explain_lists_exchange_operators(self, engine, tpch_dataset):
        text = engine.explain(build_query("Q6", tpch_dataset).plan, "gpu")
        assert "Router" in text
        assert "MemMove" in text
        assert "pipeline#" in text


class TestOptimizerDecisions:
    def test_mode_parsing(self):
        assert ExecutionMode.parse("cpu") is ExecutionMode.CPU_ONLY
        assert ExecutionMode.parse(ExecutionMode.HYBRID) is ExecutionMode.HYBRID
        with pytest.raises(ValueError):
            ExecutionMode.parse("tpu")

    def test_gpu_mode_requires_gpus(self, tpch_dataset):
        engine = HAPEEngine(cpu_only_server())
        engine.register_dataset(tpch_dataset.tables)
        query = build_query("Q6", tpch_dataset)
        with pytest.raises(OptimizerError):
            engine.execute(query.plan, "gpu")
        # CPU-only still works without accelerators.
        assert engine.execute(query.plan, "cpu").table.num_rows == 1

    def test_join_algorithm_selection_respects_build_size(self, tpch_dataset):
        """Large build sides trigger partitioned / co-processed joins."""
        from repro.engine import OptimizerOptions
        engine = HAPEEngine(
            default_server(),
            optimizer_options=OptimizerOptions(small_build_rows=10))
        engine.register_dataset(tpch_dataset.tables)
        plan = scan("orders").join(
            scan("lineitem", ["l_orderkey", "l_extendedprice"]),
            ["o_orderkey"], ["l_orderkey"]).aggregate(
                [], [agg_sum(col("l_extendedprice"), "s")])
        cpu_plan = engine.plan(plan, "cpu")
        algorithms = {node.algorithm for node in cpu_plan.walk()
                      if hasattr(node, "algorithm")}
        assert JoinAlgorithm.RADIX_CPU in algorithms
        hybrid_plan = engine.plan(plan, "hybrid")
        algorithms = {node.algorithm for node in hybrid_plan.walk()
                      if hasattr(node, "algorithm")}
        assert JoinAlgorithm.COPROCESSED_RADIX in algorithms

    def test_small_builds_use_non_partitioned_joins(self, engine, tpch_dataset):
        physical = engine.plan(build_query("Q5", tpch_dataset).plan, "cpu")
        algorithms = [node.algorithm for node in physical.walk()
                      if hasattr(node, "algorithm")]
        assert JoinAlgorithm.NON_PARTITIONED in algorithms

    def test_physical_plan_contains_routers_per_scan(self, engine, tpch_dataset):
        physical = engine.plan(build_query("Q5", tpch_dataset).plan, "hybrid")
        ops = count_operators(physical)
        assert ops["Router"] >= ops["PScan"]
        assert ops["PAggregate"] >= 2  # partial + final
