"""Worker-pool semantics and race-stress tests for the shared subsystems.

The determinism contract (outputs bit-identical at every worker count) is
pinned by ``test_invariants.py`` / ``test_fuzz_plans.py``; this module
covers the other half of the tentpole: the ``workers`` knob surface, the
ordered-merge pool itself, and — under genuine thread contention — that
the lock-protected shared state (:class:`QueryCache`,
:class:`SharedQueryCache`, :class:`OccupancyBoard`, :class:`Catalog`)
never loses or double-counts an update: counters reconcile exactly
against what the threads actually did.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.engine import HAPEEngine, QueryCache, WorkerPool
from repro.engine.workers import (
    WORKERS_ENV,
    available_cpus,
    default_workers,
    resolve_workers,
)
from repro.hardware import default_server
from repro.server.sharedcache import SharedQueryCache
from repro.storage import Table

#: Threads used by the race-stress tests.  More threads than cores is the
#: point: preemption inside compound cache/board operations is what these
#: tests are hunting.
STRESS_THREADS = 8
#: Operations per thread; enough to interleave, small enough to stay fast.
STRESS_OPS = 300


def _hammer(worker, threads: int = STRESS_THREADS) -> None:
    """Run ``worker(thread_index)`` on N threads through a start barrier."""
    barrier = threading.Barrier(threads)
    errors: list[BaseException] = []

    def run(index: int) -> None:
        try:
            barrier.wait()
            worker(index)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    pool = [threading.Thread(target=run, args=(index,))
            for index in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    if errors:
        raise errors[0]


# ----------------------------------------------------------------------
# The knob
# ----------------------------------------------------------------------
class TestWorkersKnob:
    def test_resolve_accepts_ints_strings_and_auto(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7
        assert resolve_workers("3") == 3
        assert resolve_workers("auto") == available_cpus()

    @pytest.mark.parametrize("bad", [0, -2, True, False, 1.5, "fast", ""])
    def test_resolve_rejects_everything_else(self, bad):
        with pytest.raises(ValueError):
            resolve_workers(bad)

    def test_default_is_one_without_environment(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert default_workers() == 1
        assert HAPEEngine(default_server()).workers == 1

    def test_environment_supplies_the_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert default_workers() == 3
        assert HAPEEngine(default_server()).workers == 3
        # An explicit knob always beats the environment.
        assert HAPEEngine(default_server(), workers=2).workers == 2

    def test_knob_is_retunable_and_validated(self):
        engine = HAPEEngine(default_server(), workers=2)
        assert engine.workers == 2
        assert engine.executor.pool.parallel
        engine.workers = 1
        assert engine.workers == 1
        assert not engine.executor.pool.parallel
        engine.workers = "auto"
        assert engine.workers == available_cpus()
        with pytest.raises(ValueError):
            engine.workers = 0
        with pytest.raises(ValueError):
            HAPEEngine(default_server(), workers="plenty")


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_rejects_unknown_tier(self):
        with pytest.raises(ValueError):
            WorkerPool(2, tier="gpu")

    def test_single_worker_runs_inline(self):
        pool = WorkerPool(1)
        seen = []
        pool.map_ordered(lambda i: seen.append(threading.get_ident()),
                         range(4))
        assert seen == [threading.get_ident()] * 4

    def test_map_ordered_returns_submission_order(self):
        pool = WorkerPool(4)
        # Earlier items sleep longer: completion order is the reverse of
        # submission order, results must still come back in item order.
        delays = [0.03, 0.02, 0.01, 0.0]

        def work(index: int) -> int:
            time.sleep(delays[index])
            return index * 10

        assert pool.map_ordered(work, range(4)) == [0, 10, 20, 30]

    def test_map_ordered_propagates_exceptions(self):
        pool = WorkerPool(2)

        def work(index: int) -> int:
            if index == 1:
                raise RuntimeError("boom")
            return index

        with pytest.raises(RuntimeError, match="boom"):
            pool.map_ordered(work, range(3))

    @pytest.mark.parametrize("count,workers", [
        (0, 4), (1, 4), (3, 4), (4, 4), (5, 4), (97, 4), (10, 1),
    ])
    def test_chunks_partition_the_range_exactly(self, count, workers):
        chunks = WorkerPool(max(workers, 1)).chunks(count)
        assert len(chunks) <= max(workers, 1)
        flattened = [index for chunk in chunks for index in chunk]
        assert flattened == list(range(count))


# ----------------------------------------------------------------------
# Race stress: the session cache
# ----------------------------------------------------------------------
class TestQueryCacheRaces:
    def test_mixed_put_get_invalidate_reconciles_exactly(self):
        cache = QueryCache(budget_bytes=None)
        invalidated = [0] * STRESS_THREADS
        gets = [0] * STRESS_THREADS

        def worker(index: int) -> None:
            rng = np.random.default_rng(index)
            for op in range(STRESS_OPS):
                key = ("k", int(rng.integers(0, 24)))
                kind = op % 3
                if kind == 0:
                    value = {"x": np.arange(4, dtype=np.int64)}
                    cache.put(key, value, nbytes=32,
                              tables=frozenset({f"t{key[1] % 4}"}))
                elif kind == 1:
                    cache.get(key)
                    gets[index] += 1
                else:
                    invalidated[index] += cache.invalidate_table(
                        f"t{int(rng.integers(0, 4))}")

        _hammer(worker)
        counters = cache.counters()
        # Every get counted exactly one hit or miss; nothing was lost to a
        # torn counter update.
        assert counters.lookups == counters.hits + counters.misses
        assert counters.lookups == sum(gets)
        # Every invalidation a thread was told about is in the counter —
        # and nothing more.
        assert counters.invalidated == sum(invalidated)
        # No budget, no evictions: the counter cannot drift.
        assert counters.evicted == 0
        # The byte ledger matches the live entries exactly.
        assert cache.bytes_used == sum(
            entry.nbytes for entry in cache._entries.values())
        assert len(cache) == len(cache._entries)

    def test_eviction_ledger_survives_contention(self):
        # Budget of 4 entries' worth: concurrent puts force constant
        # eviction; the byte ledger must never go negative or leak.
        cache = QueryCache(budget_bytes=128)

        def worker(index: int) -> None:
            for op in range(STRESS_OPS):
                key = (index, op % 40)
                cache.put(key, {"x": np.arange(4, dtype=np.int64)},
                          nbytes=32)
                cache.get(key)

        _hammer(worker)
        assert 0 <= cache.bytes_used <= 128
        assert cache.bytes_used == sum(
            entry.nbytes for entry in cache._entries.values())

    def test_cached_arrays_stay_frozen_under_concurrent_gets(self):
        cache = QueryCache(budget_bytes=None)
        cache.put("k", {"x": np.arange(8, dtype=np.int64)}, nbytes=64)

        def worker(index: int) -> None:
            for _ in range(STRESS_OPS):
                value = cache.get("k")
                assert value is not None
                array = value["x"]
                assert array.flags.writeable is False
                with pytest.raises(ValueError):
                    array[0] = 99

        _hammer(worker)
        assert int(cache.get("k")["x"][0]) == 0


# ----------------------------------------------------------------------
# Race stress: the shared (multi-tenant) cache
# ----------------------------------------------------------------------
class TestSharedQueryCacheRaces:
    def test_tenant_brackets_trace_then_commit_deterministically(self):
        cache = SharedQueryCache(budget_bytes=None)
        cache.put("warm", {"x": np.arange(2, dtype=np.int64)}, nbytes=16)
        cache.begin_epoch()
        brackets: dict[int, object] = {}

        def worker(index: int) -> None:
            tenant = f"tenant{index}"
            with cache.tenant(tenant) as bracket:
                for op in range(STRESS_OPS):
                    cache.get("warm" if op % 2 else ("cold", index, op))
            brackets[index] = bracket

        _hammer(worker)
        # Tracing alone moves nothing: counters are a commit-time affair.
        assert cache.counters().lookups == 0
        assert all(c.lookups == 0
                   for c in cache.tenant_counters().values())
        for index in range(STRESS_THREADS):
            delta = cache.commit(brackets[index])
            # Attribution never bleeds across brackets: each commit sees
            # exactly its own traffic, half warm hits, half cold misses.
            assert delta.hits == STRESS_OPS // 2
            assert delta.misses == STRESS_OPS - STRESS_OPS // 2
        per_tenant = cache.tenant_counters()
        assert len(per_tenant) == STRESS_THREADS
        for index in range(STRESS_THREADS):
            counters = per_tenant[f"tenant{index}"]
            assert counters.lookups == STRESS_OPS
            assert counters.hits == STRESS_OPS // 2
            assert counters.misses == STRESS_OPS - STRESS_OPS // 2
        totals = cache.counters()
        assert totals.lookups == STRESS_THREADS * STRESS_OPS
        assert totals.hits == sum(c.hits for c in per_tenant.values())
        assert totals.misses == sum(c.misses for c in per_tenant.values())

    def test_racing_lookups_commit_one_miss_in_pick_order(self):
        # However the worker threads interleave — whoever actually
        # computed the shared kernel first — classification happens at
        # commit, in the caller's (the server's pick) order: exactly one
        # miss, charged to the first committed bracket, hits for the
        # rest.  This is the deterministic-attribution contract.
        cache = SharedQueryCache(budget_bytes=None)
        cache.begin_epoch()
        brackets: dict[int, object] = {}

        def worker(index: int) -> None:
            with cache.tenant(f"tenant{index}") as bracket:
                if cache.get("shared") is None:
                    cache.put("shared",
                              {"x": np.arange(2, dtype=np.int64)}, nbytes=16)
            brackets[index] = bracket

        _hammer(worker)
        deltas = [cache.commit(brackets[index])
                  for index in range(STRESS_THREADS)]
        assert deltas[0].misses == 1 and deltas[0].hits == 0
        for delta in deltas[1:]:
            assert delta.hits == 1 and delta.misses == 0
        totals = cache.counters()
        assert totals.misses == 1
        assert totals.hits == STRESS_THREADS - 1

    def test_unbracketed_traffic_is_not_attributed(self):
        cache = SharedQueryCache(budget_bytes=None)

        def worker(index: int) -> None:
            for op in range(STRESS_OPS):
                cache.get(("anon", index, op))

        _hammer(worker)
        assert cache.tenant_counters() == {}
        assert cache.counters().misses == STRESS_THREADS * STRESS_OPS


# ----------------------------------------------------------------------
# Race stress: the occupancy board
# ----------------------------------------------------------------------
class TestOccupancyBoardRaces:
    def test_reservations_are_atomic_and_lossless(self):
        board = default_server().occupancy
        duration = 0.001

        def worker(index: int) -> None:
            for op in range(STRESS_OPS):
                # Two-resource reservations: atomicity means both
                # resources are always booked together at a common start.
                resources = (("cpu0", "gpu0") if (index + op) % 2
                             else ("cpu1", "gpu1"))
                board.reserve({name: duration for name in resources},
                              label=f"t{index}")

        _hammer(worker)
        total = STRESS_THREADS * STRESS_OPS
        expected = (total // 2) * duration
        for pair in (("cpu0", "gpu0"), ("cpu1", "gpu1")):
            for name in pair:
                # No reservation was lost or double-booked: busy time is
                # exactly ops x duration (floats: sums of equal addends).
                assert board.busy_time(name) == pytest.approx(
                    expected, rel=1e-9)
            # Atomic co-booking: both resources of a pair always moved
            # together, so their ledgers agree exactly.
            assert board.busy_time(pair[0]) == board.busy_time(pair[1])
            assert (board.clock(pair[0]).available_at
                    == board.clock(pair[1]).available_at)


# ----------------------------------------------------------------------
# Race stress: catalog invalidation delivery (regression)
# ----------------------------------------------------------------------
def _table(name: str, seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    return Table.from_arrays(name, {
        "k": rng.integers(0, 8, 16, dtype=np.int64)})


class TestCatalogConcurrency:
    def test_concurrent_registrations_get_unique_versions(self):
        from repro.storage.catalog import Catalog
        catalog = Catalog()

        def worker(index: int) -> None:
            for op in range(50):
                catalog.register(_table(f"t{index}_{op}", seed=index))

        _hammer(worker)
        versions = list(catalog.table_versions.values())
        # The version bump is atomic: no two registrations ever observed
        # the same counter value.
        assert len(versions) == STRESS_THREADS * 50
        assert len(set(versions)) == len(versions)

    def test_invalidation_delivery_is_monotonic_under_replacement(self):
        """Regression: ``subscribe`` delivery races with ``register``.

        Before the catalog lock, a replace could bump the version while
        another thread's notification was still in flight, letting a
        subscriber observe versions out of order (and caches invalidate
        against the wrong generation).  Delivery is now atomic with the
        bump, so the versions a subscriber observes are strictly
        increasing.
        """
        from repro.storage.catalog import Catalog
        catalog = Catalog()
        catalog.register(_table("shared"))
        observed: list[int] = []
        catalog.subscribe(
            lambda name: observed.append(catalog.version(name)))

        def worker(index: int) -> None:
            for op in range(100):
                catalog.register(_table("shared", seed=index * 100 + op),
                                 replace=True)

        _hammer(worker)
        assert len(observed) == STRESS_THREADS * 100
        assert observed == sorted(observed)
        assert len(set(observed)) == len(observed)

    def test_sessions_observe_versions_monotonically(self):
        """Concurrent readers never see the version counter move backwards."""
        from repro.storage.catalog import Catalog
        catalog = Catalog()
        catalog.register(_table("shared"))
        stop = threading.Event()
        histories: dict[int, list[int]] = {}

        def worker(index: int) -> None:
            if index == 0:
                for op in range(200):
                    catalog.register(_table("shared", seed=op),
                                     replace=True)
                stop.set()
                return
            history: list[int] = []
            while not stop.is_set():
                history.append(catalog.version("shared"))
            histories[index] = history

        _hammer(worker, threads=4)
        for index, history in histories.items():
            assert history == sorted(history), (
                f"reader {index} observed versions out of order")
