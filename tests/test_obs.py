"""Observability: deterministic traces, critical paths, exporters, tools.

The battery pins the PR's contracts:

* **Byte-identity** — a traced query's JSONL is byte-identical at every
  worker count and across replays; a served chaos epoch (faults,
  failovers, retries, preemption) exports byte-identical epoch JSONL at
  workers {1, 2, auto} and on a same-configuration replay.
* **Warm/cold** — only the ``VOLATILE_SPAN_KEYS`` (cache status, morsel
  counts) may differ between a cold and a warm run;
  :meth:`QueryTrace.timing_jsonl` is bit-identical across warmth.
* **Neutrality** — tracing on/off never changes results, simulated
  seconds, device busy times or server reports; ``trace`` is purely
  additive.
* **Critical paths** — the backward walk names the binding device/link
  and accounts idle gaps.
* **Exporters and tools** — Chrome trace JSON round-trips, and
  ``tools/trace_tool.py`` summarizes, analyses and diffs real exports.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.engine import HAPEEngine
from repro.faults import FaultPlan
from repro.hardware import default_server
from repro.hardware.clock import TaskRecord
from repro.obs import (
    VOLATILE_SPAN_KEYS,
    EpochTrace,
    QueryTrace,
    Span,
    Tracer,
    critical_path,
)
from repro.server import QueryServer
from repro.workloads.tpch_queries import EVALUATED_QUERIES, build_query

WORKER_COUNTS = (1, 2, "auto")


@pytest.fixture(scope="module")
def plans(tpch_dataset):
    return {name: build_query(name, tpch_dataset).plan
            for name in EVALUATED_QUERIES}


def _traced_engine(tpch_dataset, **kwargs):
    engine = HAPEEngine(default_server(), tracing=True, **kwargs)
    engine.register_dataset(tpch_dataset.tables)
    return engine


# ----------------------------------------------------------------------
# Critical-path analysis on synthetic timelines
# ----------------------------------------------------------------------
class TestCriticalPath:
    def test_chain_across_resources(self):
        records = [
            TaskRecord("cpu0", "scan", 0.0, 2.0),
            TaskRecord("pcie0", "copy", 2.0, 3.0),
            TaskRecord("gpu0", "join", 3.0, 7.0),
            TaskRecord("cpu1", "idle-ish", 0.0, 1.0),
        ]
        path = critical_path(records, 7.0, links=frozenset({"pcie0"}))
        assert [step.resource for step in path.steps] == [
            "cpu0", "pcie0", "gpu0"]
        assert path.binding_resource == "gpu0"
        assert path.bound == "compute"
        assert path.idle_seconds == 0.0
        assert path.resource_seconds["gpu0"] == 4.0

    def test_transfer_bound_and_idle_gap(self):
        records = [
            TaskRecord("cpu0", "scan", 0.0, 1.0),
            TaskRecord("pcie0", "copy", 2.0, 6.0),
        ]
        path = critical_path(records, 6.0, links=frozenset({"pcie0"}))
        assert path.binding_resource == "pcie0"
        assert path.bound == "transfer"
        assert path.idle_seconds == pytest.approx(1.0)
        assert "idle" in path.describe()

    def test_empty_timeline_is_idle(self):
        path = critical_path([], 0.0)
        assert path.bound == "idle"
        assert path.binding_resource == "idle"
        assert path.steps == ()


# ----------------------------------------------------------------------
# The Tracer recorder
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.event(1.0, "submit", tenant="a")
        assert not tracer
        assert tracer.drain() == []

    def test_drain_resets(self):
        tracer = Tracer()
        tracer.event(1.0, "submit", tenant="a")
        tracer.event(2.0, "admit", tenant="a")
        events = tracer.drain()
        assert [event.kind for event in events] == ["submit", "admit"]
        assert tracer.drain() == []


# ----------------------------------------------------------------------
# Per-query traces from the session
# ----------------------------------------------------------------------
class TestQueryTrace:
    def test_trace_contents(self, tpch_dataset, plans):
        engine = _traced_engine(tpch_dataset)
        result = engine.execute(plans["Q5"], "hybrid")
        trace = result.trace
        assert isinstance(trace, QueryTrace)
        assert trace.makespan == result.simulated_seconds
        assert trace.mode == "hybrid"
        assert trace.spans and trace.tasks
        ops = {span.op for span in trace.spans}
        assert "scan" in ops and "hash-join" in ops
        # Node ids are plan-local ordinals, not process-global counters.
        assert all(0 <= span.node_id < 200 for span in trace.spans)
        # PR 9's estimation data is joined onto the spans.
        estimated = [span for span in trace.spans
                     if span.est_rows is not None]
        assert estimated
        assert all(span.q_error >= 1.0 for span in estimated)
        # Session-owned cache: kernel statuses are recorded.
        assert {span.cache for span in trace.spans} & {"miss", "hit",
                                                       "overlay"}

    def test_byte_identical_across_workers_and_replay(self, tpch_dataset,
                                                      plans):
        texts = {}
        for workers in WORKER_COUNTS:
            engine = _traced_engine(tpch_dataset, workers=workers)
            texts[workers] = engine.execute(
                plans["Q9"], "hybrid").trace.to_jsonl()
        replay = _traced_engine(tpch_dataset).execute(
            plans["Q9"], "hybrid").trace.to_jsonl()
        assert len({*texts.values(), replay}) == 1

    def test_warm_differs_only_in_volatile_keys(self, tpch_dataset, plans):
        engine = _traced_engine(tpch_dataset)
        cold = engine.execute(plans["Q1"], "cpu").trace
        warm = engine.execute(plans["Q1"], "cpu").trace
        assert cold.timing_jsonl() == warm.timing_jsonl()
        assert cold.to_jsonl() != warm.to_jsonl()  # miss -> hit
        statuses = {span.cache for span in warm.spans} - {None}
        assert statuses <= {"hit", "overlay"}
        for key in VOLATILE_SPAN_KEYS:
            assert f'"{key}"' not in cold.timing_jsonl()

    def test_tracing_off_is_bit_identical_and_traceless(self, tpch_dataset,
                                                        plans):
        on = _traced_engine(tpch_dataset)
        off = HAPEEngine(default_server())
        off.register_dataset(tpch_dataset.tables)
        for mode in ("cpu", "hybrid"):
            traced = on.execute(plans["Q6"], mode)
            plain = off.execute(plans["Q6"], mode)
            assert plain.trace is None
            assert traced.trace is not None
            assert traced.simulated_seconds == plain.simulated_seconds
            assert traced.device_busy == plain.device_busy
            assert traced.link_bytes == plain.link_bytes
            for column in plain.table.column_names:
                assert (traced.table.array(column).tobytes()
                        == plain.table.array(column).tobytes())

    def test_tracing_toggle_on_live_session(self, tpch_dataset, plans):
        engine = HAPEEngine(default_server())
        engine.register_dataset(tpch_dataset.tables)
        assert engine.tracing is False
        assert engine.execute(plans["Q6"], "cpu").trace is None
        engine.tracing = True
        assert engine.execute(plans["Q6"], "cpu").trace is not None

    def test_critical_path_names_binding_resource(self, tpch_dataset,
                                                  plans):
        engine = _traced_engine(tpch_dataset)
        trace = engine.execute(plans["Q9"], "gpu").trace
        path = trace.critical_path()
        assert path.binding_resource in {record.resource
                                         for record in trace.tasks}
        assert path.bound in ("compute", "transfer")
        assert path.makespan == trace.makespan
        assert path.idle_seconds >= 0.0

    def test_chrome_export_round_trips(self, tpch_dataset, plans,
                                       tmp_path):
        engine = _traced_engine(tpch_dataset)
        trace = engine.execute(plans["Q5"], "hybrid").trace
        chrome = json.loads(json.dumps(trace.to_chrome(), allow_nan=False))
        assert chrome["traceEvents"]
        phases = {event["ph"] for event in chrome["traceEvents"]}
        assert {"M", "X"} <= phases
        trace.write_chrome(tmp_path / "q5.json")
        json.loads((tmp_path / "q5.json").read_text())
        trace.write_jsonl(tmp_path / "q5.jsonl")
        lines = (tmp_path / "q5.jsonl").read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "trace"


# ----------------------------------------------------------------------
# Served epoch traces under chaos
# ----------------------------------------------------------------------
def _chaos_server(tpch_dataset, plans, *, workers=1, tracing=True):
    fault_plan = (FaultPlan(seed=13)
                  .fail_device("gpu0", at=2e-4, recover_at=5e-3)
                  .transient_errors(rate=0.3))
    server = QueryServer(default_server(), workers=workers,
                         preemption=True, aging_seconds=2e-4,
                         fault_plan=fault_plan, tracing=tracing)
    server.register_dataset(tpch_dataset.tables)
    server.open_session("inter", priority="interactive",
                        max_concurrency=2, slo_p99_seconds=0.05)
    server.open_session("batch", priority="batch", max_concurrency=2)
    for name in EVALUATED_QUERIES:
        server.submit("batch", plans[name], "hybrid", label=name)
        server.submit("inter", plans[name], "gpu", label=name)
    return server


class TestEpochTrace:
    def test_chaos_epoch_byte_identical(self, tpch_dataset, plans):
        texts = {}
        for workers in WORKER_COUNTS:
            server = _chaos_server(tpch_dataset, plans, workers=workers)
            server.run()
            texts[workers] = server.last_trace.to_jsonl()
        replay = _chaos_server(tpch_dataset, plans, workers=2)
        replay.run()
        texts["replay"] = replay.last_trace.to_jsonl()
        assert len(set(texts.values())) == 1

    def test_epoch_trace_contents(self, tpch_dataset, plans):
        server = _chaos_server(tpch_dataset, plans)
        report = server.run()
        trace = server.last_trace
        assert isinstance(trace, EpochTrace)
        assert trace.makespan == report.makespan
        kinds = {event.kind for event in trace.events}
        # The chaos epoch exercises the full lifecycle vocabulary.
        assert {"submit", "admit", "dispatch", "complete", "failover",
                "retry", "preempt", "device_health", "slo"} <= kinds
        assert len(trace.queries) == len(report.tickets)
        assert trace.query("Q1", tenant="batch") is not None
        assert trace.occupancy
        # Completed queries carry shifted per-query traces and paths.
        paths = trace.critical_paths()
        assert paths
        assert all(path.binding_resource for path in paths.values())
        # Cache attribution rides the complete events, not the spans
        # (shared-cache lookups race between tenants).
        completes = [event for event in trace.events
                     if event.kind == "complete"]
        assert completes
        assert all("cache_hits" in event.attrs for event in completes)
        assert all(span.cache is None
                   for row in trace.queries if row.trace is not None
                   for span in row.trace.spans)

    def test_slo_grading_in_event_log(self, tpch_dataset, plans):
        server = _chaos_server(tpch_dataset, plans)
        server.run()
        slo = [event for event in server.last_trace.events
               if event.kind == "slo"]
        assert len(slo) == 1  # only the interactive tenant has an SLO
        assert slo[0].attrs["tenant"] == "inter"
        assert isinstance(slo[0].attrs["met"], bool)
        assert slo[0].attrs["objective"] == 0.05

    def test_tracing_off_server_is_bit_identical(self, tpch_dataset,
                                                 plans):
        on = _chaos_server(tpch_dataset, plans, tracing=True)
        off = _chaos_server(tpch_dataset, plans, tracing=False)
        report_on = on.run()
        report_off = off.run()
        assert off.last_trace is None
        assert report_on.makespan == report_off.makespan

        def fingerprint(report):
            return [(t.ticket_id, t.status, t.submit_time, t.start_time,
                     t.finish_time, t.retries, t.failovers, t.preemptions,
                     t.result.simulated_seconds if t.result else None)
                    for t in report.tickets]

        assert fingerprint(report_on) == fingerprint(report_off)

    def test_cache_invalidation_events(self, tpch_dataset):
        server = QueryServer(default_server(), tracing=True)
        server.register_dataset(tpch_dataset.tables)
        table = tpch_dataset.tables["region"]
        server.register_table(table, replace=True)
        server.drop_table("region")
        kinds = [event.kind for event in server.tracer.drain()]
        assert kinds.count("cache_invalidation") == 2

    def test_epoch_chrome_export(self, tpch_dataset, plans, tmp_path):
        server = _chaos_server(tpch_dataset, plans)
        server.run()
        chrome = json.loads(json.dumps(server.last_trace.to_chrome(),
                                       allow_nan=False))
        names = {event.get("name") for event in chrome["traceEvents"]}
        assert "failover" in names
        server.last_trace.write_chrome(tmp_path / "epoch.json")
        json.loads((tmp_path / "epoch.json").read_text())


# ----------------------------------------------------------------------
# Metrics satellites: extra gauges and per-tenant cache counters
# ----------------------------------------------------------------------
class TestMetricsSatellites:
    def test_extra_and_tenant_cache_in_exports(self, tpch_dataset, plans):
        server = QueryServer(default_server())
        server.register_dataset(tpch_dataset.tables)
        server.open_session("inter", priority="interactive")
        server.open_session("batch", priority="batch")
        for name in EVALUATED_QUERIES:
            server.submit("batch", plans[name], "hybrid", label=name)
            server.submit("inter", plans[name], "cpu", label=name)
        server.run()
        snapshot = server.metrics()
        assert snapshot.extra["epoch_median_q_error"] >= 1.0
        occupancy = {key: value for key, value in snapshot.extra.items()
                     if key.startswith("device_occupancy")}
        assert occupancy
        assert all(value > 0.0 for value in occupancy.values())
        payload = snapshot.as_dict()
        assert payload["extra"] == snapshot.extra
        json.loads(snapshot.to_json())
        text = snapshot.to_prometheus()
        assert "repro_epoch_median_q_error " in text
        assert 'repro_device_occupancy{device="cpu0"}' in text
        assert 'repro_tenant_cache_hits_total{tenant="batch"}' in text
        assert 'repro_tenant_cache_misses_total{tenant="inter"}' in text
        tenant_cache = server.query_cache.tenant_counters()
        for tenant in ("inter", "batch"):
            samples = snapshot.tenants[tenant]
            assert samples["cache_hits_total"] == tenant_cache[tenant].hits
            assert (samples["cache_misses_total"]
                    == tenant_cache[tenant].misses)

    def test_empty_snapshot_still_renders(self):
        server = QueryServer(default_server())
        snapshot = server.metrics()
        assert snapshot.extra == {}
        assert "extra" in snapshot.as_dict()
        snapshot.to_prometheus()


# ----------------------------------------------------------------------
# The trace_tool CLI on real exports
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def trace_tool():
    path = Path(__file__).resolve().parent.parent / "tools" / "trace_tool.py"
    spec = importlib.util.spec_from_file_location("trace_tool", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules["trace_tool"] = module
    spec.loader.exec_module(module)
    return module


class TestTraceTool:
    @pytest.fixture()
    def exports(self, tpch_dataset, plans, tmp_path):
        engine = _traced_engine(tpch_dataset)
        engine.execute(plans["Q5"], "hybrid").trace.write_jsonl(
            tmp_path / "query.jsonl")
        server = _chaos_server(tpch_dataset, plans)
        server.run()
        server.last_trace.write_jsonl(tmp_path / "epoch.jsonl")
        return tmp_path

    def test_summarize(self, trace_tool, exports, capsys):
        assert trace_tool.main(
            ["summarize", str(exports / "query.jsonl")]) == 0
        assert trace_tool.main(
            ["summarize", str(exports / "epoch.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "busy cpu0" in out and "event kinds" in out

    def test_critical_path(self, trace_tool, exports, capsys):
        assert trace_tool.main(
            ["critical-path", str(exports / "query.jsonl")]) == 0
        assert trace_tool.main(
            ["critical-path", str(exports / "epoch.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "bound by" in out

    def test_diff(self, trace_tool, exports, capsys):
        epoch = exports / "epoch.jsonl"
        same = exports / "same.jsonl"
        same.write_text(epoch.read_text())
        assert trace_tool.main(["diff", str(epoch), str(same)]) == 0
        lines = epoch.read_text().splitlines()
        lines[10] = lines[10].replace("{", '{"x":1,', 1)
        mutated = exports / "mutated.jsonl"
        mutated.write_text("\n".join(lines) + "\n")
        assert trace_tool.main(["diff", str(epoch), str(mutated)]) == 1
        out = capsys.readouterr().out
        assert "diverge at line 11" in out
        truncated = exports / "truncated.jsonl"
        truncated.write_text("\n".join(lines[:5]) + "\n")
        assert trace_tool.main(["diff", str(epoch), str(truncated)]) == 1
