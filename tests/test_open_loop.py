"""Open-loop serving: live arrivals, preemption, aging, SLOs, metrics.

Pins the contracts of the open-loop serving layer (``docs/SERVING.md``):

* seeded Poisson / trace arrival streams replay deterministically — the
  same seed reproduces the entire :class:`ServerReport` bit for bit;
* interleaved open-loop runs keep per-query simulated seconds (and
  result tables) bit-identical to solo single-session runs — arrivals,
  preemption and aging may only add queue wait;
* an interactive arrival preempts a running batch attempt at a morsel
  boundary: the victim's reservation tail is released at the kill
  instant (the scheduler regression of this PR), the partial busy time
  is charged via the ``dispatch(fraction=)`` accounting, and the
  re-executed query returns a bit-identical table;
* drain-style submission through the open-loop path (all arrivals at
  t=0, preemption off) is provably the PR 5-era ``run()`` special case;
* a batch tenant under a 10:1 interactive flood still makes progress —
  aging bounds its exposure to preemption;
* per-tenant SLOs are graded on the report and exported through the
  Prometheus/JSON metrics snapshot.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import HAPEEngine
from repro.errors import ServingError
from repro.hardware import default_server
from repro.server import (
    Arrival,
    ArrivalSource,
    QueryServer,
    poisson_arrivals,
    trace_arrivals,
)
from repro.workloads import EVALUATED_QUERIES, build_query

MODES = ("cpu", "gpu", "hybrid")


def _table_bytes(table) -> tuple:
    return tuple(sorted(
        (name, table.array(name).tobytes(), str(table.array(name).dtype))
        for name in table.column_names))


def _solo_records(tpch_dataset) -> dict[tuple[str, str], tuple]:
    """Per-(query, mode) solo fingerprints from a private cold engine."""
    engine = HAPEEngine(default_server(), cache_budget_bytes=0)
    engine.register_dataset(tpch_dataset.tables)
    records = {}
    for query_name in EVALUATED_QUERIES:
        plan = build_query(query_name, tpch_dataset).plan
        for mode in MODES:
            result = engine.execute(plan, mode)
            records[(query_name, mode)] = (
                result.simulated_seconds,
                _table_bytes(result.table),
                tuple(sorted(result.device_busy.items())),
                tuple(sorted(result.link_bytes.items())),
            )
    return records


def _fingerprint(report) -> tuple:
    """Everything a replayed epoch must reproduce bit for bit."""
    return (
        report.makespan,
        report.serial_seconds,
        tuple((t.ticket_id, t.tenant, t.label, t.status, t.mode,
               t.final_mode, t.submit_time, t.start_time, t.finish_time,
               t.attempts, t.retries, t.failovers, t.preemptions,
               t.wasted_seconds, t.simulated_seconds,
               None if t.result is None else _table_bytes(t.result.table),
               (t.cache.hits, t.cache.misses, t.cache.evicted,
                t.cache.invalidated))
              for t in report.tickets),
        tuple(sorted(
            (name, rep.completed, rep.rejected, rep.failed, rep.timed_out,
             rep.preemptions, rep.queue_wait_seconds, rep.simulated_seconds,
             tuple(rep.latencies), rep.slo_p99_seconds, rep.slo_met)
            for name, rep in report.tenants.items())),
        (report.cache.hits, report.cache.misses, report.cache.evicted,
         report.cache.invalidated, report.cache.entries,
         report.cache.bytes_used),
    )


def _open_loop_server(tpch_dataset, *, seed: int,
                      preemption: bool = True) -> QueryServer:
    """A 3-tenant open-loop server: Poisson interactive + traced batch."""
    server = QueryServer(default_server(), preemption=preemption,
                         aging_seconds=2e-4)
    server.register_dataset(tpch_dataset.tables)
    server.open_session("inter", priority="interactive", max_concurrency=2,
                        slo_p99_seconds=0.05)
    server.open_session("norm", priority="normal", max_concurrency=2)
    server.open_session("batch", priority="batch", max_concurrency=2)
    plans = {q: build_query(q, tpch_dataset).plan for q in EVALUATED_QUERIES}
    server.add_arrivals(poisson_arrivals(
        "inter", [plans["Q1"], plans["Q6"]], rate_qps=20_000.0, count=6,
        seed=seed, mode="cpu"))
    server.add_arrivals(poisson_arrivals(
        "norm", [plans["Q5"]], rate_qps=10_000.0, count=3, seed=seed + 1,
        mode="gpu"))
    server.add_arrivals(trace_arrivals(
        "batch", [(0.0, plans["Q9"]), (5e-5, plans["Q5"])], mode="hybrid"))
    return server


# ----------------------------------------------------------------------
# Arrival sources
# ----------------------------------------------------------------------
class TestArrivalSources:
    def test_poisson_is_seed_deterministic(self):
        a = poisson_arrivals("t", ["p"], rate_qps=100.0, count=16, seed=7)
        b = poisson_arrivals("t", ["p"], rate_qps=100.0, count=16, seed=7)
        assert [x.at for x in a] == [y.at for y in b]
        c = poisson_arrivals("t", ["p"], rate_qps=100.0, count=16, seed=8)
        assert [x.at for x in a] != [y.at for y in c]

    def test_poisson_times_are_ordered_and_round_robin(self):
        source = poisson_arrivals("t", ["p0", "p1"], rate_qps=50.0,
                                  count=5, seed=3, start=1.0)
        times = [arrival.at for arrival in source]
        assert times == sorted(times)
        assert all(at > 1.0 for at in times)
        assert [arrival.plan for arrival in source] == [
            "p0", "p1", "p0", "p1", "p0"]

    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals("t", ["p"], rate_qps=0.0, count=1, seed=1)
        with pytest.raises(ValueError):
            poisson_arrivals("t", ["p"], rate_qps=1.0, count=-1, seed=1)
        with pytest.raises(ValueError):
            poisson_arrivals("t", [], rate_qps=1.0, count=2, seed=1)
        with pytest.raises(ValueError):
            poisson_arrivals("t", ["p"], rate_qps=1.0, count=1, seed=1,
                             start=-0.5)

    def test_trace_rejects_out_of_order_and_bad_entries(self):
        with pytest.raises(ServingError):
            trace_arrivals("t", [(1.0, "a"), (0.5, "b")])
        with pytest.raises(ServingError):
            trace_arrivals("t", [(1.0,)])
        with pytest.raises(ValueError):
            Arrival(at=-1.0, tenant="t", plan="p")

    def test_trace_accepts_per_entry_modes(self):
        source = trace_arrivals("t", [(0.0, "a"), (0.5, "b", "cpu")],
                                mode="gpu")
        assert [arrival.mode for arrival in source] == ["gpu", "cpu"]

    def test_callable_plans_resolve_at_submit(self):
        calls = []

        def build():
            calls.append(1)
            return "the-plan"

        arrival = Arrival(at=0.0, tenant="t", plan=build)
        assert not calls
        assert arrival.resolve_plan() == "the-plan"
        assert calls == [1]

    def test_source_pop_due_and_rewind(self):
        source = ArrivalSource("s", [Arrival(at=0.0, tenant="t", plan="a"),
                                     Arrival(at=1.0, tenant="t", plan="b")])
        assert len(source) == 2
        assert [a.plan for a in source.pop_due(0.5)] == ["a"]
        assert source.peek().at == 1.0
        assert [a.plan for a in source.pop_due(2.0)] == ["b"]
        assert source.exhausted and source.peek() is None
        source.rewind()
        assert source.peek().plan == "a"


# ----------------------------------------------------------------------
# Determinism: seeded replay and solo identity
# ----------------------------------------------------------------------
class TestOpenLoopDeterminism:
    def test_same_seed_reproduces_the_report_exactly(self, tpch_dataset):
        first = _open_loop_server(tpch_dataset, seed=11).run()
        second = _open_loop_server(tpch_dataset, seed=11).run()
        assert _fingerprint(first) == _fingerprint(second)
        assert first.completed == len(first.tickets) > 0

    def test_different_seed_changes_the_schedule(self, tpch_dataset):
        first = _open_loop_server(tpch_dataset, seed=11).run()
        second = _open_loop_server(tpch_dataset, seed=12).run()
        assert _fingerprint(first) != _fingerprint(second)

    def test_open_loop_matches_solo_runs_bit_for_bit(self, tpch_dataset):
        """Arrivals, preemption and aging only ever add queue wait."""
        solo = _solo_records(tpch_dataset)
        plans = {q: build_query(q, tpch_dataset).plan
                 for q in EVALUATED_QUERIES}
        by_label = {}
        server = QueryServer(default_server(), preemption=True,
                             aging_seconds=2e-4)
        server.register_dataset(tpch_dataset.tables)
        server.open_session("inter", priority="interactive",
                            max_concurrency=2)
        server.open_session("batch", priority="batch", max_concurrency=2)
        arrivals = []
        rng = np.random.default_rng(29)
        at = 0.0
        for index in range(8):
            query = EVALUATED_QUERIES[index % len(EVALUATED_QUERIES)]
            mode = MODES[index % len(MODES)]
            label = f"i{index}:{query}/{mode}"
            by_label[label] = (query, mode)
            arrivals.append(Arrival(at=at, tenant="inter", plan=plans[query],
                                    mode=mode, label=label))
            at += float(rng.exponential(4e-5))
        server.add_arrivals(arrivals)
        batch = [(0.0, plans["Q9"], "cpu"), (0.0, plans["Q5"], "hybrid")]
        server.add_arrivals(trace_arrivals("batch", batch))
        for index, (_, _, mode) in enumerate(batch):
            by_label[f"batch-t{index + 1}"] = (
                ("Q9", "Q5")[index], mode)
        report = server.run()
        assert report.completed == len(report.tickets) == 10
        for ticket in report.tickets:
            query, mode = by_label[ticket.label]
            record = (
                ticket.result.simulated_seconds,
                _table_bytes(ticket.result.table),
                tuple(sorted(ticket.result.device_busy.items())),
                tuple(sorted(ticket.result.link_bytes.items())),
            )
            assert record == solo[(query, mode)], (
                f"{ticket.label}: served run diverged from the solo run")
            assert ticket.start_time >= ticket.submit_time
            assert ticket.finish_time == pytest.approx(
                ticket.start_time + ticket.result.simulated_seconds)


# ----------------------------------------------------------------------
# The PR 5 drain is a provable special case of the open-loop path
# ----------------------------------------------------------------------
class TestDrainStyleEquivalence:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_all_arrivals_at_zero_match_legacy_submit(self, tpch_dataset,
                                                      workers):
        plans = {q: build_query(q, tpch_dataset).plan
                 for q in EVALUATED_QUERIES}
        jobs = [("alpha", "Q1", "cpu"), ("beta", "Q5", "gpu"),
                ("alpha", "Q6", "hybrid"), ("gamma", "Q9", "cpu"),
                ("beta", "Q1", "hybrid"), ("gamma", "Q6", "gpu")]
        # Shared cache ON at every worker count: trace-at-lookup /
        # commit-in-pick-order attribution makes hit/miss counters a
        # pure function of the admission schedule, so the fingerprint —
        # cache counters included — matches exactly even when tenants
        # with overlapping kernel footprints execute concurrently.
        knobs = {}

        def build(server):
            server.register_dataset(tpch_dataset.tables)
            server.open_session("alpha", priority="interactive",
                                max_concurrency=2)
            server.open_session("beta", priority="normal")
            server.open_session("gamma", priority="batch")

        legacy = QueryServer(default_server(), workers=workers, **knobs)
        build(legacy)
        for tenant, query, mode in jobs:
            legacy.submit(tenant, plans[query], mode)
        legacy_report = legacy.run()

        open_loop = QueryServer(default_server(), workers=workers,
                                preemption=False, **knobs)
        build(open_loop)
        open_loop.add_arrivals(
            Arrival(at=0.0, tenant=tenant, plan=plans[query], mode=mode)
            for tenant, query, mode in jobs)
        open_report = open_loop.run()

        assert _fingerprint(open_report) == _fingerprint(legacy_report)


# ----------------------------------------------------------------------
# Preemption
# ----------------------------------------------------------------------
class TestPreemption:
    @pytest.fixture
    def solo_q9_cpu(self, tpch_dataset):
        engine = HAPEEngine(default_server(), cache_budget_bytes=0)
        engine.register_dataset(tpch_dataset.tables)
        return engine.execute(build_query("Q9", tpch_dataset).plan, "cpu")

    def _preemption_server(self, tpch_dataset, *, arrival_fraction: float,
                           preemption: bool = True,
                           aging_seconds: float | None = 10.0):
        solo = HAPEEngine(default_server(), cache_budget_bytes=0)
        solo.register_dataset(tpch_dataset.tables)
        q9 = build_query("Q9", tpch_dataset).plan
        q6 = build_query("Q6", tpch_dataset).plan
        span = solo.execute(q9, "cpu").simulated_seconds
        server = QueryServer(default_server(), preemption=preemption,
                             aging_seconds=aging_seconds,
                             cache_budget_bytes=0)
        server.register_dataset(tpch_dataset.tables)
        server.open_session("batch", priority="batch")
        server.open_session("inter", priority="interactive")
        server.add_arrivals(trace_arrivals("batch", [(0.0, q9)], mode="cpu"))
        server.add_arrivals(trace_arrivals(
            "inter", [(span * arrival_fraction, q6)], mode="cpu"))
        return server, span

    def test_interactive_preempts_batch_at_morsel_boundary(
            self, tpch_dataset, solo_q9_cpu):
        server, span = self._preemption_server(tpch_dataset,
                                               arrival_fraction=0.4)
        report = server.run()
        assert report.completed == 2
        assert report.preemptions == 1
        batch = next(t for t in report.tickets if t.tenant == "batch")
        inter = next(t for t in report.tickets if t.tenant == "inter")
        # The victim was killed at the first morsel boundary at/after the
        # interactive arrival: 0.4 of the way in, 7 morsels -> 3/7.
        morsels = solo_q9_cpu.morsels_dispatched
        boundary = span * np.ceil(0.4 * morsels) / morsels
        assert batch.preemptions == 1
        assert batch.wasted_seconds == pytest.approx(boundary)
        # Scheduler regression: the reservation tail was released at the
        # kill instant — the interactive query starts there, well before
        # the victim's originally reserved end.
        assert inter.start_time == pytest.approx(boundary)
        assert inter.start_time < span
        # The preempted-then-resumed query is bit-identical to solo.
        assert batch.status == "completed"
        assert batch.result.simulated_seconds == solo_q9_cpu.simulated_seconds
        assert _table_bytes(batch.result.table) == _table_bytes(
            solo_q9_cpu.table)
        # Preemption consumed no retry budget.
        assert batch.attempts == 1
        assert batch.retries == 0

    def test_preemption_off_keeps_fifo_occupancy(self, tpch_dataset):
        server, span = self._preemption_server(tpch_dataset,
                                               arrival_fraction=0.4,
                                               preemption=False)
        report = server.run()
        assert report.preemptions == 0
        inter = next(t for t in report.tickets if t.tenant == "inter")
        # Without preemption the interactive query waits for the batch
        # query's full reserved span.
        assert inter.start_time >= span

    def test_aged_batch_victim_is_protected(self, tpch_dataset, solo_q9_cpu):
        # Aging so small the batch ticket ages to interactive rank long
        # before the arrival strikes: it can no longer be preempted.
        aging = solo_q9_cpu.simulated_seconds * 0.05
        server, span = self._preemption_server(tpch_dataset,
                                               arrival_fraction=0.4,
                                               aging_seconds=aging)
        report = server.run()
        assert report.preemptions == 0

    def test_preemption_charges_fraction_on_the_board(self, tpch_dataset):
        """The board keeps exactly the killed attempt's partial busy time."""
        server, span = self._preemption_server(tpch_dataset,
                                               arrival_fraction=0.4)
        report = server.run()
        batch = next(t for t in report.tickets if t.tenant == "batch")
        clock = server.topology.occupancy.clock("cpu0")
        labels = [r.label for r in clock.records]
        assert labels.count("batch:batch-t1") == 2
        killed = next(r for r in clock.records
                      if r.label == "batch:batch-t1")
        full_busy = batch.result.device_busy["cpu0"]
        fraction = batch.wasted_seconds / span
        assert killed.duration == pytest.approx(full_busy * fraction)


# ----------------------------------------------------------------------
# Aging under a sustained interactive flood
# ----------------------------------------------------------------------
class TestFloodAging:
    def _flood(self, tpch_dataset, *, aging_seconds):
        q9 = build_query("Q9", tpch_dataset).plan
        q6 = build_query("Q6", tpch_dataset).plan
        solo = HAPEEngine(default_server(), cache_budget_bytes=0)
        solo.register_dataset(tpch_dataset.tables)
        batch_span = solo.execute(q9, "cpu").simulated_seconds
        inter_span = solo.execute(q6, "cpu").simulated_seconds
        server = QueryServer(default_server(), preemption=True,
                             aging_seconds=aging_seconds,
                             cache_budget_bytes=0)
        server.register_dataset(tpch_dataset.tables)
        server.open_session("inter", priority="interactive",
                            max_concurrency=1)
        server.open_session("batch", priority="batch", max_concurrency=1)
        # A 10:1 flood: interactive arrivals land back to back (one
        # inter-arrival ~= one interactive span) for ~10x the batch span.
        count = max(int(10 * batch_span / inter_span), 20)
        server.add_arrivals(poisson_arrivals(
            "inter", [q6], rate_qps=1.0 / inter_span, count=count, seed=77,
            mode="cpu"))
        server.add_arrivals(trace_arrivals("batch", [(0.0, q9)], mode="cpu"))
        return server, batch_span

    def test_batch_makes_progress_under_flood(self, tpch_dataset):
        aging = 2e-4
        server, batch_span = self._flood(tpch_dataset, aging_seconds=aging)
        report = server.run()
        batch = next(t for t in report.tickets if t.tenant == "batch")
        flood_end = max(t.finish_time for t in report.tickets
                        if t.tenant == "inter")
        assert batch.status == "completed"
        # The aging bound: once the ticket has waited two full aging
        # steps it outranks the flood and cannot be preempted, so it
        # finishes within (aging exposure + its own span + one in-flight
        # interactive query) — long before the flood drains.
        assert batch.finish_time <= 2 * aging + 2 * batch_span
        assert batch.finish_time < flood_end

    def test_without_aging_the_flood_starves_batch(self, tpch_dataset):
        aged_server, _ = self._flood(tpch_dataset, aging_seconds=2e-4)
        aged_batch = next(t for t in aged_server.run().tickets
                          if t.tenant == "batch")
        raw_server, _ = self._flood(tpch_dataset, aging_seconds=None)
        raw_batch = next(t for t in raw_server.run().tickets
                         if t.tenant == "batch")
        # Same flood, no aging: the batch query is preempted more and
        # finishes strictly later — aging is what bounds the starvation.
        assert raw_batch.preemptions > aged_batch.preemptions
        assert raw_batch.finish_time > aged_batch.finish_time


# ----------------------------------------------------------------------
# SLO grading and the metrics snapshot
# ----------------------------------------------------------------------
class TestSLOsAndMetrics:
    def test_slo_pass_fail_on_report(self, tpch_dataset):
        plans = {q: build_query(q, tpch_dataset).plan
                 for q in EVALUATED_QUERIES}
        server = QueryServer(default_server())
        server.register_dataset(tpch_dataset.tables)
        server.open_session("fast", priority="interactive",
                            slo_p99_seconds=10.0)
        server.open_session("doomed", priority="normal",
                            slo_p99_seconds=1e-9)
        server.open_session("unbound", priority="batch")
        for tenant in ("fast", "doomed", "unbound"):
            server.submit(tenant, plans["Q6"], "cpu")
        report = server.run()
        assert report.tenants["fast"].slo_met is True
        assert report.tenants["doomed"].slo_met is False
        assert report.tenants["unbound"].slo_met is None
        assert report.slos_met is False
        assert "SLO met" in report.describe()
        assert "SLO MISSED" in report.describe()

    def test_metrics_before_any_run_are_zeroed(self):
        server = QueryServer(default_server())
        snapshot = server.metrics()
        assert snapshot.server["completed_total"] == 0
        assert snapshot.tenants == {}
        text = snapshot.to_prometheus()
        assert "repro_server_completed_total 0" in text
        assert "repro_server_healthy 1" in text

    def test_metrics_export_prometheus_and_json(self, tpch_dataset):
        server = _open_loop_server(tpch_dataset, seed=5)
        report = server.run()
        snapshot = server.metrics()
        assert snapshot.server["completed_total"] == report.completed
        text = snapshot.to_prometheus()
        assert text.endswith("\n")
        assert (f"repro_server_completed_total {report.completed}" in text)
        assert 'repro_tenant_latency_p99_seconds{tenant="inter"}' in text
        assert 'repro_tenant_slo_met{tenant="inter"} 1' in text
        # Tenants without an SLO export no slo_met sample.
        assert 'repro_tenant_slo_met{tenant="batch"}' not in text
        assert 'repro_device_available{device="gpu0"} 1' in text
        # HELP/TYPE lines precede every sample family.
        assert text.index("# HELP repro_server_completed_total") < text.index(
            "repro_server_completed_total ")
        import json
        payload = json.loads(snapshot.to_json())
        assert payload["server"]["completed_total"] == report.completed
        assert payload["tenants"]["inter"]["slo_met"] == 1
        assert payload["health"] == "ok"

    def test_metrics_and_health_reflect_device_failure(self):
        server = QueryServer(default_server())
        server.topology.fail_device("gpu1")
        try:
            snapshot = server.metrics()
            assert 'repro_device_available{device="gpu1"} 0' in (
                snapshot.to_prometheus())
            assert "repro_server_healthy 0" in snapshot.to_prometheus()
            health = server.health()
            assert health["status"] == "degraded"
            assert health["degraded_devices"] == ["gpu1"]
        finally:
            server.topology.restore_device("gpu1")
        assert server.health()["status"] == "ok"

    def test_metrics_replay_deterministically(self, tpch_dataset):
        first = _open_loop_server(tpch_dataset, seed=21)
        first.run()
        second = _open_loop_server(tpch_dataset, seed=21)
        second.run()
        assert first.metrics().to_prometheus() == (
            second.metrics().to_prometheus())
        assert first.metrics().to_json() == second.metrics().to_json()


# ----------------------------------------------------------------------
# Reservation truncation (the scheduler release-at-kill regression)
# ----------------------------------------------------------------------
class TestReservationRelease:
    def test_clock_truncate_shrinks_availability_and_busy(self):
        from repro.hardware.clock import SimClock
        clock = SimClock("cpu0")
        record = clock.reserve(10.0, label="victim")
        assert clock.available_at == 10.0
        truncated = clock.truncate(record, 0.3)
        assert truncated.end == pytest.approx(3.0)
        assert clock.available_at == pytest.approx(3.0)
        assert clock.busy_time == pytest.approx(3.0)
        with pytest.raises(ValueError):
            clock.truncate(truncated, 1.5)
        with pytest.raises(ValueError):
            clock.truncate(record, 0.5)  # stale handle: already replaced

    def test_follow_on_query_starts_at_the_kill_instant(self, tpch_dataset):
        """A preempt-killed reservation frees its device at the kill time,
        not at the originally reserved end."""
        from repro.server import DeviceScheduler
        engine = HAPEEngine(default_server(), cache_budget_bytes=0)
        engine.register_dataset(tpch_dataset.tables)
        result = engine.execute(build_query("Q6", tpch_dataset).plan, "cpu")
        topology = engine.topology
        topology.reset_occupancy()
        scheduler = DeviceScheduler(topology)
        victim = scheduler.dispatch(result, earliest=0.0, label="victim")
        released = scheduler.release(victim, fraction=0.25)
        assert released.finish == pytest.approx(
            victim.start + 0.25 * (victim.finish - victim.start))
        follow_on = scheduler.dispatch(result, earliest=0.0,
                                       label="follow-on")
        kill_ends = {r.resource: r.end for r in released.records}
        expected_start = max(kill_ends[name] for name in follow_on.resources
                             if name in kill_ends)
        assert follow_on.start == pytest.approx(expected_start)
        assert follow_on.start < victim.finish

    def test_release_validates_fraction(self, tpch_dataset):
        from repro.server import DeviceScheduler
        engine = HAPEEngine(default_server(), cache_budget_bytes=0)
        engine.register_dataset(tpch_dataset.tables)
        result = engine.execute(build_query("Q6", tpch_dataset).plan, "cpu")
        scheduler = DeviceScheduler(engine.topology)
        placement = scheduler.dispatch(result, earliest=0.0, label="q")
        with pytest.raises(ValueError):
            scheduler.release(placement, fraction=1.5)
