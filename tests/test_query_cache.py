"""The cross-query kernel cache: warm sessions, invalidation, eviction.

Covers the session-lifetime :class:`repro.engine.querycache.QueryCache`
end to end: warm repeated queries skip kernel re-evaluation while keeping
results and simulated seconds bit-identical to a cold engine, catalog
``register(replace=True)`` / ``drop`` invalidate exactly the entries that
read the changed table, and the ``cache_budget_bytes`` knob bounds
retention with LRU eviction (``0`` disables cross-query caching without
losing within-query single evaluation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    DEFAULT_CACHE_BUDGET_BYTES,
    HAPEEngine,
    QueryCache,
    Session,
)
from repro.errors import CatalogError
from repro.hardware import default_server
from repro.operators import kernel_counts, reset_kernel_counts
from repro.relational import agg_count, agg_sum, col, execute_logical, lit, scan
from repro.storage import Table

MODES = ("cpu", "gpu", "hybrid")


def _table(name: str, n: int = 64, *, offset: int = 0) -> Table:
    return Table.from_arrays(name, {
        "k": np.arange(n, dtype=np.int64) + offset,
        "v": (np.arange(n, dtype=np.int64) * 3 + offset) % 17,
    })


def _sum_plan(table: str = "t"):
    return (scan(table).filter(col("v") >= lit(2))
            .aggregate([], [agg_sum(col("k"), "total")]))


@pytest.fixture
def session():
    engine = HAPEEngine(default_server())
    engine.register_table(_table("t"))
    engine.register_table(_table("u", offset=100))
    return engine


# ----------------------------------------------------------------------
# QueryCache unit behavior
# ----------------------------------------------------------------------
class TestQueryCacheUnit:
    def test_get_put_and_counters(self):
        cache = QueryCache(budget_bytes=1024)
        assert cache.get("k") is None
        cache.put("k", "value", nbytes=8)
        assert cache.get("k") == "value"
        counters = cache.counters()
        assert (counters.hits, counters.misses) == (1, 1)
        assert counters.lookups == 2

    def test_lru_eviction_order(self):
        cache = QueryCache(budget_bytes=20)
        cache.put("a", 1, nbytes=8)
        cache.put("b", 2, nbytes=8)
        assert cache.get("a") == 1          # touch: b is now LRU
        cache.put("c", 3, nbytes=8)         # over budget -> evict b
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.counters().evicted == 1
        assert cache.bytes_used == 16

    def test_oversized_entry_rejected_not_flushing_others(self):
        cache = QueryCache(budget_bytes=16)
        cache.put("small", 1, nbytes=8)
        cache.put("huge", 2, nbytes=64)
        assert "huge" not in cache
        assert "small" in cache             # the warm set survives
        assert cache.counters().evicted == 1

    def test_invalidate_table_is_exact(self):
        cache = QueryCache(budget_bytes=None)
        cache.put("a", 1, nbytes=4, tables=frozenset({"t"}))
        cache.put("b", 2, nbytes=4, tables=frozenset({"t", "u"}))
        cache.put("c", 3, nbytes=4, tables=frozenset({"u"}))
        assert cache.invalidate_table("t") == 2
        assert "c" in cache and "a" not in cache and "b" not in cache
        assert cache.counters().invalidated == 2
        assert cache.bytes_used == 4

    def test_zero_budget_disables(self):
        cache = QueryCache(budget_bytes=0)
        assert not cache.enabled
        cache.put("k", 1, nbytes=0)
        assert len(cache) == 0

    def test_set_budget_shrinks_and_validates(self):
        cache = QueryCache(budget_bytes=None)
        for i in range(4):
            cache.put(i, i, nbytes=10)
        cache.set_budget(25)
        assert cache.bytes_used <= 25
        assert cache.counters().evicted == 2
        cache.set_budget(0)
        assert len(cache) == 0 and not cache.enabled
        with pytest.raises(ValueError):
            cache.set_budget(-1)

    def test_clear_keeps_counters(self):
        cache = QueryCache()
        cache.put("k", 1, nbytes=8)
        cache.get("k")
        cache.clear()
        assert len(cache) == 0 and cache.bytes_used == 0
        assert cache.counters().hits == 1


# ----------------------------------------------------------------------
# Catalog versioning and subscriptions
# ----------------------------------------------------------------------
class TestCatalogVersioning:
    def test_versions_are_unique_per_registration(self, session):
        catalog = session.catalog
        first = catalog.version("t")
        session.register_table(_table("t", offset=5), replace=True)
        second = catalog.version("t")
        assert second > first
        session.drop_table("t")
        session.register_table(_table("t"))
        assert catalog.version("t") > second
        with pytest.raises(CatalogError):
            catalog.version("never-registered")

    def test_subscribers_fire_on_replace_and_drop_only(self, session):
        events: list[str] = []
        session.catalog.subscribe(events.append)
        session.register_table(_table("fresh"))        # no event
        session.register_table(_table("t"), replace=True)
        session.drop_table("u")
        assert events == ["t", "u"]


# ----------------------------------------------------------------------
# Warm sessions
# ----------------------------------------------------------------------
class TestWarmSessions:
    def test_cold_query_counts_misses_only(self, session):
        result = session.execute(_sum_plan(), "cpu")
        assert result.cache.hits == 0
        assert result.cache.misses > 0

    def test_warm_repeat_runs_zero_kernels(self, session):
        first = session.execute(_sum_plan(), "cpu")
        reset_kernel_counts()
        second = session.execute(_sum_plan(), "cpu")
        assert kernel_counts() == {}
        assert second.cache.misses == 0
        assert second.cache.hits == first.cache.misses
        assert second.morsels_dispatched == 0

    def test_warm_results_and_simulated_seconds_match_cold_engine(self,
                                                                  session):
        warmup = session.execute(_sum_plan(), "cpu")
        warm = session.execute(_sum_plan(), "cpu")
        cold_engine = HAPEEngine(default_server())
        cold_engine.register_table(_table("t"))
        cold = cold_engine.execute(_sum_plan(), "cpu")
        assert warm.simulated_seconds == cold.simulated_seconds
        assert warmup.simulated_seconds == cold.simulated_seconds
        np.testing.assert_array_equal(warm.table.array("total"),
                                      cold.table.array("total"))

    def test_within_query_repeats_are_not_cache_traffic(self, session):
        """Repeated subplans inside one plan hit the overlay, not the cache."""
        side_a = scan("t").filter(col("v") >= lit(0))
        side_b = scan("t").filter(col("v") >= lit(0))
        plan = side_a.join(side_b, ["k"], ["k"])
        result = session.execute(plan, "cpu")
        # hits/misses count *distinct* subplans: one scan, one
        # filter/project (shared by both sides) and one join — the second
        # occurrence of the duplicated side is served by the per-query
        # overlay and bumps neither counter.
        assert result.cache.hits == 0
        assert result.cache.misses == 3

    def test_shared_dimension_subplan_hits_across_queries(self, session):
        dim = scan("t").filter(col("v") >= lit(5))
        q1 = dim.join(scan("u"), ["k"], ["k"]).aggregate(
            [], [agg_sum(col("v"), "s")])
        dim_again = scan("t").filter(col("v") >= lit(5))
        q2 = dim_again.join(scan("u"), ["k"], ["k"]).aggregate(
            [], [agg_count("cnt")])
        session.execute(q1, "cpu")
        second = session.execute(q2, "cpu")
        # The dimension scan+filter (and the shared probe scan) hit; the
        # different join/aggregate miss.
        assert second.cache.hits > 0
        assert second.cache.misses > 0

    # The whole-suite warm-vs-cold TPC-H identity sweep (outputs,
    # simulated seconds and stats records bit-identical for every query ×
    # mode) lives in the configuration matrix of tests/test_invariants.py,
    # crossed with morsel sizes and pipeline fusion.


# ----------------------------------------------------------------------
# Invalidation edges
# ----------------------------------------------------------------------
class TestInvalidation:
    def test_replace_invalidates_and_recomputes(self, session):
        stale = session.execute(_sum_plan(), "cpu")
        session.register_table(_table("t", n=32, offset=7), replace=True)
        fresh = session.execute(_sum_plan(), "cpu")
        assert fresh.cache.invalidated > 0
        assert fresh.cache.hits == 0
        reference = execute_logical(_sum_plan(), session.catalog)
        np.testing.assert_array_equal(fresh.table.array("total"),
                                      reference.array("total"))
        assert fresh.table.array("total")[0] != stale.table.array("total")[0]

    def test_drop_then_reregister_different_data(self, session):
        session.execute(_sum_plan(), "cpu")
        session.drop_table("t")
        assert session.cache_stats.invalidated > 0
        session.register_table(_table("t", n=16, offset=3))
        result = session.execute(_sum_plan(), "cpu")
        assert result.cache.hits == 0
        reference = execute_logical(_sum_plan(), session.catalog)
        np.testing.assert_array_equal(result.table.array("total"),
                                      reference.array("total"))

    def test_invalidation_spares_other_tables(self, session):
        session.execute(_sum_plan("t"), "cpu")
        session.execute(_sum_plan("u"), "cpu")
        session.register_table(_table("u", offset=9), replace=True)
        warm_t = session.execute(_sum_plan("t"), "cpu")
        assert warm_t.cache.misses == 0      # t's entries stayed warm
        assert warm_t.cache.invalidated > 0  # u's entries were discarded
        cold_u = session.execute(_sum_plan("u"), "cpu")
        assert cold_u.cache.misses > 0

    def test_join_entries_invalidate_on_either_input(self, session):
        plan = (scan("t").join(scan("u"), ["k"], ["k"])
                .aggregate([], [agg_count("cnt")]))
        session.execute(plan, "cpu")
        session.register_table(_table("u", n=32, offset=40), replace=True)
        result = session.execute(plan, "cpu")
        # The u-scan and the join over it recompute; the t-scan stays warm.
        assert result.cache.hits > 0
        assert result.cache.misses > 0
        reference = execute_logical(plan, session.catalog)
        np.testing.assert_array_equal(result.table.array("cnt"),
                                      reference.array("cnt"))


# ----------------------------------------------------------------------
# Budget, eviction and the session knob
# ----------------------------------------------------------------------
class TestBudgetAndEviction:
    def test_tiny_budget_evicts_derived_results(self):
        engine = HAPEEngine(default_server(), cache_budget_bytes=1)
        engine.register_table(_table("t"))
        reset_kernel_counts()
        first = engine.execute(_sum_plan(), "cpu")
        cold_counts = kernel_counts()
        assert first.cache.evicted > 0       # derived entries cannot fit
        reset_kernel_counts()
        second = engine.execute(_sum_plan(), "cpu")
        # Zero-byte scan entries still hit; every derived kernel re-runs.
        assert kernel_counts() == cold_counts
        assert second.cache.hits > 0
        assert second.cache.misses > 0
        assert second.simulated_seconds == first.simulated_seconds

    def test_zero_budget_disables_but_keeps_single_evaluation(self):
        engine = HAPEEngine(default_server(), cache_budget_bytes=0)
        engine.register_table(_table("t"))
        side_a = scan("t").filter(col("v") >= lit(0))
        side_b = scan("t").filter(col("v") >= lit(0))
        plan = side_a.join(side_b, ["k"], ["k"])
        reset_kernel_counts()
        result = engine.execute(plan, "cpu")
        # PR 1 behavior preserved: the duplicated side evaluates once.
        assert kernel_counts().get("filter_project", 0) == 1
        assert result.cache.lookups == 0     # no cross-query cache traffic
        reset_kernel_counts()
        engine.execute(plan, "cpu")
        assert kernel_counts().get("filter_project", 0) == 1  # re-runs cold

    def test_budget_knob_is_retunable_and_validated(self, session):
        assert session.cache_budget_bytes == DEFAULT_CACHE_BUDGET_BYTES
        session.execute(_sum_plan(), "cpu")
        occupied = session.cache_stats.bytes_used
        assert occupied > 0
        session.cache_budget_bytes = 1       # shrink -> evict down
        assert session.cache_stats.bytes_used <= 1
        assert session.cache_stats.evicted > 0
        session.cache_budget_bytes = None    # unlimited
        assert session.cache_budget_bytes is None
        with pytest.raises(ValueError):
            session.cache_budget_bytes = -5
        with pytest.raises(ValueError):
            HAPEEngine(default_server(), cache_budget_bytes=-1)

    def test_clear_query_cache_forces_cold_run(self, session):
        session.execute(_sum_plan(), "cpu")
        session.clear_query_cache()
        assert session.cache_stats.entries == 0
        reset_kernel_counts()
        result = session.execute(_sum_plan(), "cpu")
        assert result.cache.hits == 0
        assert kernel_counts()               # kernels ran again

    def test_cache_stats_snapshot_shape(self, session):
        session.execute(_sum_plan(), "cpu")
        stats = session.cache_stats
        assert stats.entries > 0
        assert stats.bytes_used >= 0
        assert stats.budget_bytes == DEFAULT_CACHE_BUDGET_BYTES
        assert "hits=" in stats.describe()

    def test_cached_results_are_frozen_against_mutation(self, session):
        """In-place writes to returned tables raise instead of poisoning
        the cache (or, via zero-copy scan entries, the catalog)."""
        first = session.execute(_sum_plan(), "cpu")
        with pytest.raises(ValueError):
            first.table.array("total")[0] = -999
        scan_result = session.execute(scan("t"), "cpu")
        with pytest.raises(ValueError):
            scan_result.table.array("k")[0] = 12345
        warm = session.execute(_sum_plan(), "cpu")
        np.testing.assert_array_equal(warm.table.array("total"),
                                      first.table.array("total"))

    def test_cache_survives_morsel_retuning(self, session):
        """The cache key ignores morsel_rows: retuning keeps entries warm."""
        session.execute(_sum_plan(), "cpu")
        session.morsel_rows = 7
        reset_kernel_counts()
        result = session.execute(_sum_plan(), "cpu")
        assert kernel_counts() == {}
        assert result.cache.misses == 0


class TestDescribeSurface:
    def test_query_result_describe_mentions_cache(self, session):
        result = session.execute(_sum_plan(), "cpu")
        assert "cache:" in result.describe()
        assert "misses=" in result.describe()

    def test_default_session_has_cache_enabled(self):
        assert Session().cache_budget_bytes == DEFAULT_CACHE_BUDGET_BYTES


class TestCostAwareEviction:
    """The ``cache_eviction`` knob: recompute-cost-per-byte retention."""

    def test_default_policy_is_lru(self):
        assert QueryCache(100).policy == "lru"
        assert Session().cache_eviction == "lru"

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="cache_eviction"):
            QueryCache(100, policy="mru")
        with pytest.raises(ValueError, match="cache_eviction"):
            Session(cache_eviction="random")

    def _filled(self, policy: str) -> QueryCache:
        cache = QueryCache(100, policy=policy)
        # "expensive": 60 bytes that took 10s to compute (rate 1/6 s/B);
        # "cheap": 50 bytes computed in 1ms (rate 2e-5 s/B).
        cache.put("expensive", {"a": np.zeros(60, dtype=np.uint8)},
                  nbytes=60, cost_seconds=10.0)
        cache.put("cheap", {"a": np.zeros(50, dtype=np.uint8)},
                  nbytes=50, cost_seconds=0.001)
        return cache

    def test_lru_evicts_oldest_regardless_of_cost(self):
        cache = self._filled("lru")
        assert "expensive" not in cache
        assert "cheap" in cache

    def test_cost_policy_keeps_expensive_per_byte_entries(self):
        cache = self._filled("cost")
        # Over budget at the second insert, but the cheap newcomer is the
        # lowest recompute-cost-per-byte entry, so it is the victim.
        assert "expensive" in cache
        assert "cheap" not in cache
        assert cache.counters().evicted == 1

    def test_cost_ties_fall_back_to_lru_order(self):
        cache = QueryCache(100, policy="cost")
        cache.put("old", {"a": np.zeros(60, dtype=np.uint8)},
                  nbytes=60, cost_seconds=0.6)
        cache.put("new", {"a": np.zeros(60, dtype=np.uint8)},
                  nbytes=60, cost_seconds=0.6)  # same 0.01 s/B rate
        assert "old" not in cache and "new" in cache

    def test_zero_byte_entries_are_never_victims(self):
        cache = QueryCache(100, policy="cost")
        cache.put("scan", {"a": np.zeros(4096, dtype=np.uint8)},
                  nbytes=0, cost_seconds=0.0)  # zero-copy scan entry
        cache.put("big1", {"a": np.zeros(80, dtype=np.uint8)},
                  nbytes=80, cost_seconds=1.0)
        cache.put("big2", {"a": np.zeros(80, dtype=np.uint8)},
                  nbytes=80, cost_seconds=2.0)
        assert "scan" in cache  # evicting it would free nothing
        assert "big1" not in cache and "big2" in cache

    def test_set_policy_retunes_in_place(self):
        cache = QueryCache(None, policy="lru")
        cache.set_policy("cost")
        assert cache.policy == "cost"
        with pytest.raises(ValueError, match="cache_eviction"):
            cache.set_policy("fifo")

    def test_engine_knob_end_to_end(self):
        """A cost-policy session stays correct and timing-neutral."""
        results = {}
        for policy in ("lru", "cost"):
            session = Session(default_server(), cache_eviction=policy,
                              cache_budget_bytes=2048)
            session.register_table(_table("t", 512))
            first = session.execute(_sum_plan(), "cpu")
            second = session.execute(_sum_plan(), "cpu")
            assert first.simulated_seconds == second.simulated_seconds
            assert np.array_equal(first.table.array("total"),
                                  second.table.array("total"))
            results[policy] = first
        assert results["lru"].simulated_seconds == \
            results["cost"].simulated_seconds
        session.cache_eviction = "lru"  # retunable mid-session
        assert session.cache_eviction == "lru"
