"""Tests for the expression AST: evaluation, source generation, aggregates."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ExpressionError
from repro.relational import (
    agg_avg,
    agg_count,
    agg_max,
    agg_min,
    agg_sum,
    between,
    col,
    lit,
)
from repro.relational.expr import AggregateSpec


@pytest.fixture
def columns():
    return {
        "a": np.asarray([1.0, 2.0, 3.0, 4.0]),
        "b": np.asarray([10.0, 20.0, 30.0, 40.0]),
        "flag": np.asarray([1, 0, 1, 0]),
    }


class TestEvaluation:
    def test_arithmetic(self, columns):
        expr = (col("a") + col("b")) * lit(2.0) - lit(1.0)
        expected = (columns["a"] + columns["b"]) * 2.0 - 1.0
        np.testing.assert_allclose(expr.evaluate(columns), expected)

    def test_division_variants(self, columns):
        np.testing.assert_allclose((col("b") / col("a")).evaluate(columns),
                                   columns["b"] / columns["a"])
        np.testing.assert_array_equal(
            (col("b") // lit(7.0)).evaluate(columns), columns["b"] // 7.0)

    def test_comparisons_and_boolean_ops(self, columns):
        expr = (col("a") >= lit(2.0)) & ~(col("b") > lit(30.0))
        np.testing.assert_array_equal(
            expr.evaluate(columns),
            (columns["a"] >= 2.0) & ~(columns["b"] > 30.0))
        either = (col("a") == lit(1.0)) | (col("a") == lit(4.0))
        assert either.evaluate(columns).sum() == 2

    def test_between(self, columns):
        expr = between(col("a"), 2.0, 3.0)
        assert expr.evaluate(columns).tolist() == [False, True, True, False]

    def test_unknown_column_raises(self, columns):
        with pytest.raises(ExpressionError):
            col("missing").evaluate(columns)

    def test_columns_tracking(self):
        expr = (col("a") + col("b")) > col("c")
        assert expr.columns() == {"a", "b", "c"}
        assert lit(3).columns() == set()

    def test_invalid_operators_rejected(self):
        from repro.relational.expr import Arithmetic, BooleanOp, Comparison
        with pytest.raises(ExpressionError):
            Arithmetic("%", col("a"), lit(2))
        with pytest.raises(ExpressionError):
            Comparison("<>", col("a"), lit(2))
        with pytest.raises(ExpressionError):
            BooleanOp("xor", col("a"), col("b"))


class TestSourceGeneration:
    def test_to_source_round_trip(self, columns):
        expr = (col("a") * lit(3.0) + col("b")) >= lit(20.0)
        source = expr.to_source("cols")
        evaluated = eval(source, {"np": np}, {"cols": columns})  # noqa: S307
        np.testing.assert_array_equal(evaluated, expr.evaluate(columns))

    def test_source_references_columns_dict(self):
        assert col("x").to_source("packet") == "packet['x']"
        assert "&" in ((col("a") > lit(1)) & (col("b") > lit(2))).to_source()

    @given(st.floats(min_value=-100, max_value=100, allow_nan=False),
           st.floats(min_value=-100, max_value=100, allow_nan=False))
    def test_eval_matches_numpy_property(self, x, y):
        columns = {"a": np.asarray([x]), "b": np.asarray([y])}
        expr = col("a") * lit(2.0) + col("b")
        assert expr.evaluate(columns)[0] == pytest.approx(2.0 * x + y)


class TestAggregateSpecs:
    def test_constructors(self):
        assert agg_sum(col("a"), "s").func == "sum"
        assert agg_avg(col("a"), "m").func == "avg"
        assert agg_min(col("a"), "lo").func == "min"
        assert agg_max(col("a"), "hi").func == "max"
        assert agg_count("n").expr is None

    def test_invalid_aggregates(self):
        with pytest.raises(ExpressionError):
            AggregateSpec("median", col("a"), "m")
        with pytest.raises(ExpressionError):
            AggregateSpec("sum", None, "s")

    def test_aggregate_columns(self):
        assert agg_sum(col("a") * col("b"), "s").columns() == {"a", "b"}
        assert agg_count("n").columns() == set()
