"""Tests for logical plans, the reference executor, traits, pipelines and JIT."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codegen import (
    CPUBackend,
    GPUBackend,
    break_into_pipelines,
    pipelines_per_device,
    provider_for,
)
from repro.errors import PlanError
from repro.hardware import DeviceKind
from repro.relational import (
    Packing,
    Traits,
    agg_count,
    agg_sum,
    col,
    count_operators,
    cpu_traits,
    execute_logical,
    gpu_traits,
    lit,
    scan,
)
from repro.storage import Catalog, Table


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.register(Table.from_arrays("t", {
        "k": np.asarray([1, 2, 3, 4, 5, 6], dtype=np.int64),
        "g": np.asarray([0, 0, 1, 1, 2, 2], dtype=np.int64),
        "v": np.asarray([1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
    }))
    catalog.register(Table.from_arrays("d", {
        "k": np.asarray([2, 4, 6], dtype=np.int64),
        "label": np.asarray([20, 40, 60], dtype=np.int64),
    }))
    return catalog


class TestLogicalPlansAndReference:
    def test_filter_project_aggregate(self, catalog):
        plan = (scan("t")
                .filter(col("v") > lit(1.0))
                .project({"g": col("g"), "v2": col("v") * lit(2.0)})
                .aggregate(["g"], [agg_sum(col("v2"), "s"), agg_count("n")]))
        result = execute_logical(plan, catalog)
        by_group = dict(zip(result.array("g").tolist(), result.array("s").tolist()))
        assert by_group == {0: 4.0, 1: 14.0, 2: 22.0}

    def test_join_and_order(self, catalog):
        plan = (scan("t").join(scan("d"), ["k"], ["k"])
                .project({"k": col("k"), "label": col("label")})
                .order_by(["k"]))
        result = execute_logical(plan, catalog)
        assert result.array("k").tolist() == [2, 4, 6]
        assert result.array("label").tolist() == [20, 40, 60]

    def test_plan_introspection(self):
        plan = scan("t").filter(col("v") > lit(0)).join(scan("d"), ["k"], ["k"])
        assert plan.referenced_tables() == {"t", "d"}
        assert "Join" in plan.pretty()
        assert len(list(plan.walk())) == 4

    def test_invalid_plans_rejected(self):
        with pytest.raises(PlanError):
            scan("t").join(scan("d"), [], [])
        with pytest.raises(PlanError):
            scan("t").aggregate(["g"], [])
        with pytest.raises(PlanError):
            scan("t").project({})


class TestTraits:
    def test_trait_converters(self):
        traits = cpu_traits(parallelism=2)
        assert traits.with_device(DeviceKind.GPU).device is DeviceKind.GPU
        assert traits.with_parallelism(4).parallelism == 4
        assert traits.with_locality("gpu1").locality == "gpu1"
        packed = traits.with_packing(Packing.PACKET, ("partition",))
        assert packed.packet_properties == ("partition",)
        assert "dop=2" in traits.describe()

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            Traits(parallelism=0)

    def test_gpu_traits_helper(self):
        assert gpu_traits().device is DeviceKind.GPU


class TestPipelines:
    def test_fused_chain_is_one_pipeline(self, engine, tpch_dataset):
        from repro.workloads import tpch_q6
        physical = engine.plan(tpch_q6(tpch_dataset).plan, "cpu")
        pipelines = break_into_pipelines(physical)
        assert len(pipelines) >= 3  # scan, parallel pipeline, final aggregate
        histogram = pipelines_per_device(pipelines)
        assert DeviceKind.CPU in histogram

    def test_gpu_plan_has_gpu_pipelines(self, engine, tpch_dataset):
        from repro.workloads import tpch_q6
        physical = engine.plan(tpch_q6(tpch_dataset).plan, "gpu")
        histogram = pipelines_per_device(break_into_pipelines(physical))
        assert histogram.get(DeviceKind.GPU, 0) >= 1
        ops = count_operators(physical)
        assert ops.get("MemMove", 0) >= 1
        assert ops.get("DeviceCrossing", 0) >= 1


class TestBackends:
    def test_provider_registry(self):
        assert isinstance(provider_for(DeviceKind.CPU), CPUBackend)
        assert isinstance(provider_for(DeviceKind.GPU), GPUBackend)

    def test_generated_filter_project_is_correct(self):
        backend = CPUBackend()
        kernel = backend.compile_filter_project(
            "pipe0", predicate=col("v") > lit(2.0),
            projections={"v2": col("v") * lit(10.0)})
        out = kernel({"v": np.asarray([1.0, 2.0, 3.0, 4.0])})
        assert out["v2"].tolist() == [30.0, 40.0]
        assert "def pipe0" in kernel.source
        assert "CPU pipeline" in kernel.source

    def test_gpu_backend_emits_atomics(self):
        backend = GPUBackend()
        source = backend.generate_aggregate_update(
            "agg0", aggregates=[agg_sum(col("v"), "s")])
        assert "_atomic_add" in source
        cpu_source = CPUBackend().generate_aggregate_update(
            "agg0", aggregates=[agg_sum(col("v"), "s")])
        assert "_atomic_add" not in cpu_source

    def test_gpu_kernel_compiles_and_runs(self):
        backend = GPUBackend()
        source = backend.generate_aggregate_update(
            "agg0", aggregates=[agg_sum(col("v"), "s")])
        kernel = backend.compile("agg0", source)
        state = kernel.function({"v": np.asarray([1.0, 2.0])}, {"s": 0.0})
        assert state["s"] == pytest.approx(3.0)

    def test_backends_generate_different_source(self):
        cpu_src = CPUBackend().generate_filter_project(
            "p", predicate=None, projections={"x": col("x")})
        gpu_src = GPUBackend().generate_filter_project(
            "p", predicate=None, projections={"x": col("x")})
        assert cpu_src != gpu_src
