#!/usr/bin/env python
"""Multi-tenant serving tour: one server, four tenants, shared warmth.

Walks the serving subsystem end to end (see ``docs/SERVING.md``):

1. a 4-tenant mixed CPU/GPU closed-loop workload whose device-disjoint
   streams overlap on the occupancy board (throughput > serial);
2. per-query simulated seconds bit-identical to solo execution;
3. shared-cache warmth across tenants, with tenant-tagged attribution;
4. priority classes (interactive dispatches ahead of batch);
5. backpressure: a bounded queue rejecting the excess submission;
6. exact shared-cache invalidation on ``register(replace=True)``.

Run with ``PYTHONPATH=src python examples/multi_tenant_server.py`` (or
``make examples``).
"""

from __future__ import annotations

import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parent.parent
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro.engine import HAPEEngine  # noqa: E402
from repro.errors import AdmissionError  # noqa: E402
from repro.hardware import default_server  # noqa: E402
from repro.server import QueryServer  # noqa: E402
from repro.storage import generate_tpch  # noqa: E402
from repro.workloads import all_queries  # noqa: E402

SCALE_FACTOR = 0.01
SEED = 2019


def main() -> int:
    dataset = generate_tpch(SCALE_FACTOR, seed=SEED)
    queries = all_queries(dataset)

    # ------------------------------------------------------------------
    # 1. A mixed 4-tenant closed loop: CPU streams next to GPU streams.
    # ------------------------------------------------------------------
    server = QueryServer(default_server())
    server.register_dataset(dataset.tables)
    tenants = (("cpu-a", "cpu"), ("gpu-a", "gpu"),
               ("cpu-b", "cpu"), ("gpu-b", "gpu"))
    for tenant, _ in tenants:
        server.open_session(tenant)
    for tenant, mode in tenants:
        for name, query in queries.items():
            server.submit(tenant, query.plan, mode, label=f"{name}/{mode}")
    report = server.run()
    print("== 4-tenant mixed CPU/GPU closed loop ==")
    print(report.describe())

    # ------------------------------------------------------------------
    # 2. Serving never changes a query's own simulated time.
    # ------------------------------------------------------------------
    solo = HAPEEngine(default_server())
    solo.register_dataset(dataset.tables)
    for ticket in report.tickets[:4]:
        reference = solo.execute(ticket.plan, ticket.mode)
        assert ticket.result.simulated_seconds == reference.simulated_seconds
    print("\nper-query simulated seconds: bit-identical to solo execution")

    # ------------------------------------------------------------------
    # 3. Cross-tenant warmth: gpu-b rode on gpu-a's cold kernels.
    # ------------------------------------------------------------------
    counters = server.query_cache.tenant_counters()
    print("tenant cache attribution:")
    for tenant, _ in tenants:
        print(f"  {tenant}: {counters[tenant].describe()}")

    # ------------------------------------------------------------------
    # 4. Priority classes: interactive cuts ahead of batch.
    # ------------------------------------------------------------------
    prio = QueryServer(default_server())
    prio.register_dataset(dataset.tables)
    prio.open_session("batch-tenant", priority="batch", max_concurrency=2)
    prio.open_session("dash", priority="interactive", max_concurrency=2)
    for name, query in queries.items():
        prio.submit("batch-tenant", query.plan, "cpu", label=name)
    for name in ("Q1", "Q6"):
        prio.submit("dash", queries[name].plan, "cpu", label=name)
    prio_report = prio.run()
    dash_starts = [t.start_time for t in prio_report.tickets
                   if t.tenant == "dash"]
    batch_starts = [t.start_time for t in prio_report.tickets
                    if t.tenant == "batch-tenant"]
    assert max(dash_starts) <= min(batch_starts)
    print("\ninteractive tenant dispatched before every batch query "
          f"(dash starts {[f'{s * 1e3:.3f}ms' for s in dash_starts]})")

    # ------------------------------------------------------------------
    # 5. Backpressure: the bounded queue rejects the excess submission.
    # ------------------------------------------------------------------
    tight = QueryServer(default_server())
    tight.register_dataset(dataset.tables)
    tight.open_session("bursty", max_queue_depth=2)
    tight.submit("bursty", queries["Q1"].plan, "cpu")
    tight.submit("bursty", queries["Q6"].plan, "cpu")
    try:
        tight.submit("bursty", queries["Q5"].plan, "cpu")
    except AdmissionError as exc:
        print(f"\nbackpressure: {exc}")
    tight_report = tight.run()
    assert tight_report.completed == 2 and tight_report.rejected == 1

    # ------------------------------------------------------------------
    # 6. Shared-cache invalidation is exact under multi-tenant use.
    # ------------------------------------------------------------------
    before = server.query_cache.stats()
    server.register_table(dataset.tables["region"], replace=True)
    after = server.query_cache.stats()
    print(f"\nreplacing 'region' invalidated "
          f"{after.invalidated - before.invalidated} shared entries "
          f"(others stay warm for every tenant)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
