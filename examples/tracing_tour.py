#!/usr/bin/env python
"""Deterministic tracing tour: spans, epoch events, critical paths.

Walks the observability subsystem end to end (see
``docs/OBSERVABILITY.md``):

1. a traced solo query: operator-level spans with placement, busy
   slices, est-vs-actual cardinalities and cache status, plus the
   critical path naming the device or link that bounded the makespan;
2. the determinism contract: the exported JSONL is byte-identical at
   workers {1, 2, auto} and across a replay;
3. warm vs cold: a warm run differs only in the declared
   ``VOLATILE_SPAN_KEYS``; the timing view is byte-identical;
4. tracing off: ``result.trace`` is ``None`` and simulated seconds are
   bit-identical — tracing records, it never re-times;
5. a served chaos epoch (device outage + transient faults + preemption)
   traced at several worker counts: the full lifecycle event log, all
   byte-identical, with per-query critical paths, Chrome-trace export
   and the metrics satellites (tenant cache counters, derived gauges).

Run with ``PYTHONPATH=src python examples/tracing_tour.py`` (or
``make examples``).
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

_REPO = Path(__file__).resolve().parent.parent
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro.engine import HAPEEngine  # noqa: E402
from repro.faults import FaultPlan  # noqa: E402
from repro.hardware import default_server  # noqa: E402
from repro.obs import VOLATILE_SPAN_KEYS  # noqa: E402
from repro.server import QueryServer  # noqa: E402
from repro.storage import generate_tpch  # noqa: E402
from repro.workloads import all_queries  # noqa: E402

SCALE_FACTOR = 0.01
SEED = 2019
WORKER_COUNTS = (1, 2, "auto")


def main() -> int:
    dataset = generate_tpch(SCALE_FACTOR, seed=SEED)
    queries = all_queries(dataset)

    # ------------------------------------------------------------------
    # 1. A traced solo query: spans and the critical path.
    # ------------------------------------------------------------------
    engine = HAPEEngine(default_server(), cache_budget_bytes=0,
                        tracing=True)
    engine.register_dataset(dataset.tables)
    result = engine.execute(queries["Q5"].plan, "hybrid")
    trace = result.trace
    print("== Q5 hybrid, traced ==")
    print(f"{len(trace.spans)} operator spans, "
          f"{len(trace.tasks)} resource busy slices, "
          f"makespan {trace.makespan * 1e3:.3f}ms")
    for span in trace.spans[:4]:
        est = ("" if span.est_rows is None
               else f" est_rows={span.est_rows:.0f} q={span.q_error:.2f}")
        print(f"  node {span.node_id:2d} {span.op:<14s} "
              f"[{span.start * 1e3:8.3f}, {span.end * 1e3:8.3f}]ms "
              f"on {','.join(span.devices)}{est}")
    path = trace.critical_path()
    print(path.describe())
    assert path.binding_resource

    # ------------------------------------------------------------------
    # 2. Byte-identity at every worker count and across a replay.
    # ------------------------------------------------------------------
    def solo_jsonl(workers) -> str:
        eng = HAPEEngine(default_server(), cache_budget_bytes=0,
                         workers=workers, tracing=True)
        eng.register_dataset(dataset.tables)
        return eng.execute(queries["Q5"].plan, "hybrid").trace.to_jsonl()

    texts = [solo_jsonl(w) for w in WORKER_COUNTS]
    texts.append(solo_jsonl(WORKER_COUNTS[0]))      # same-config replay
    assert all(text == texts[0] for text in texts)
    print(f"\nJSONL export byte-identical at workers {WORKER_COUNTS} "
          f"and across a replay ({len(texts[0].splitlines())} lines)")

    # ------------------------------------------------------------------
    # 3. Warm vs cold: only the declared volatile keys move.
    # ------------------------------------------------------------------
    cached = HAPEEngine(default_server(), tracing=True)
    cached.register_dataset(dataset.tables)
    cold = cached.execute(queries["Q5"].plan, "hybrid")
    warm = cached.execute(queries["Q5"].plan, "hybrid")
    assert warm.trace.timing_jsonl() == cold.trace.timing_jsonl()
    changed: set[str] = set()
    for left, right in zip(cold.trace.to_jsonl().splitlines(),
                           warm.trace.to_jsonl().splitlines()):
        a, b = json.loads(left), json.loads(right)
        changed.update(key for key in a if a[key] != b.get(key))
    assert changed <= set(VOLATILE_SPAN_KEYS)
    print(f"warm run differs from cold only in {sorted(changed)} "
          f"(VOLATILE_SPAN_KEYS); timing view byte-identical")

    # ------------------------------------------------------------------
    # 4. Tracing off: no trace, nothing re-timed.
    # ------------------------------------------------------------------
    untraced = HAPEEngine(default_server(), cache_budget_bytes=0)
    untraced.register_dataset(dataset.tables)
    plain = untraced.execute(queries["Q5"].plan, "hybrid")
    assert plain.trace is None
    assert plain.simulated_seconds == result.simulated_seconds
    print("tracing off: result.trace is None, simulated seconds "
          "bit-identical to the traced run")

    # ------------------------------------------------------------------
    # 5. A served chaos epoch, traced.
    # ------------------------------------------------------------------
    def serve(workers, *, fault_plan=None, tracing=True, aging=None):
        server = QueryServer(default_server(), workers=workers,
                             preemption=True,
                             aging_seconds=aging,
                             fault_plan=fault_plan, tracing=tracing)
        server.register_dataset(dataset.tables)
        server.open_session("inter", priority="interactive",
                            max_concurrency=2, slo_p99_seconds=1.0)
        server.open_session("batch", priority="batch", max_concurrency=2)
        for name, query in queries.items():
            server.submit("batch", query.plan, "hybrid", label=name)
            server.submit("inter", query.plan, "gpu", label=name)
        return server, server.run()

    # Fault-free reference first, to place the outage window inside the
    # epoch (same recipe as the `trace` benchmark suite).
    _, reference = serve(1, tracing=False, aging=1.0)
    aging = reference.makespan / 8
    chaos = (FaultPlan(seed=13)
             .fail_device("gpu0", at=reference.makespan * 0.25,
                          recover_at=reference.makespan * 0.60)
             .transient_errors(rate=0.2))

    server, report = serve(1, fault_plan=chaos, aging=aging)
    epoch = server.last_trace
    kinds = sorted({event.kind for event in epoch.events})
    print("\n== served chaos epoch, traced ==")
    print(f"{len(epoch.queries)} tickets, {len(epoch.events)} lifecycle "
          f"events, kinds: {', '.join(kinds)}")
    print(f"failovers={report.failovers} retries={report.retries} "
          f"preemptions={report.preemptions}")
    assert report.failovers > 0

    drains = [serve(w, fault_plan=chaos, aging=aging)[0]
              .last_trace.to_jsonl() for w in WORKER_COUNTS]
    drains.append(serve(WORKER_COUNTS[0], fault_plan=chaos,
                        aging=aging)[0].last_trace.to_jsonl())
    assert all(text == drains[0] for text in drains)
    print(f"epoch JSONL byte-identical at workers {WORKER_COUNTS} and "
          f"across a replay ({len(drains[0].splitlines())} lines)")

    by_ticket = {q.ticket: q for q in epoch.queries}
    print("\nper-query critical paths:")
    for ticket_id, cp in sorted(epoch.critical_paths().items()):
        traced = by_ticket[ticket_id]
        print(f"  {traced.tenant}:{traced.label:<4s} ({traced.final_mode:<6s})"
              f" bound by {cp.binding_resource}"
              f" ({cp.bound}, idle {cp.idle_seconds * 1e3:.3f}ms)")
        assert cp.binding_resource

    with tempfile.TemporaryDirectory() as tmp:
        chrome_path = Path(tmp) / "epoch.chrome.json"
        epoch.write_chrome(chrome_path)
        payload = json.loads(chrome_path.read_text())
        phases = {event["ph"] for event in payload["traceEvents"]}
        print(f"\nChrome trace: {len(payload['traceEvents'])} events, "
              f"phases {sorted(phases)} — load it at ui.perfetto.dev")

    snapshot = server.metrics()
    wanted = ("tenant_cache", "epoch_median_q_error", "device_occupancy")
    print("\nmetrics satellites (Prometheus exposition excerpt):")
    for line in snapshot.to_prometheus().splitlines():
        if any(key in line for key in wanted) and not line.startswith("#"):
            print(f"  {line}")

    print("\ninspect exported traces with: "
          "python tools/trace_tool.py summarize|critical-path|diff ...")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
