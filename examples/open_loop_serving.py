#!/usr/bin/env python
"""Open-loop serving tour: arrivals, preemption, aging, SLOs, metrics.

Walks the open-loop subsystem end to end (see ``docs/SERVING.md``):

1. an open-loop epoch: a Poisson interactive tenant and a trace-replay
   ad-hoc tenant arrive on the server's simulated clock while a batch
   tenant drains from t=0 — and the same arrival seed replays the whole
   ``ServerReport`` identically;
2. the timing-neutrality invariant survives open-loop: every served
   query's simulated seconds are bit-identical to a cold solo run;
3. preemption at a morsel boundary: an interactive arrival evicts a
   running batch query, the freed reservation tail is released at the
   kill instant, and the re-run is bit-identical with no retry charged;
4. aging bounds starvation: under a 10:1 interactive flood the batch
   query is promoted, becomes non-preemptible and finishes inside the
   flood;
5. per-tenant p99 SLOs graded on the report, and the Prometheus/JSON
   ``server.metrics()`` snapshot.

Run with ``PYTHONPATH=src python examples/open_loop_serving.py`` (or
``make examples``).
"""

from __future__ import annotations

import math
import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parent.parent
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro.engine import HAPEEngine  # noqa: E402
from repro.hardware import default_server  # noqa: E402
from repro.server import (  # noqa: E402
    Arrival, QueryServer, poisson_arrivals, trace_arrivals)
from repro.storage import generate_tpch  # noqa: E402
from repro.workloads import all_queries  # noqa: E402

SCALE_FACTOR = 0.01
SEED = 2019
ARRIVAL_SEED = 7


def fingerprint(report):
    """Everything the replay must reproduce, timestamps included."""
    return tuple(
        (t.label, t.tenant, t.status, t.submit_time, t.start_time,
         t.finish_time, t.preemptions, t.result.simulated_seconds)
        for t in sorted(report.tickets, key=lambda t: t.ticket_id))


def main() -> int:
    dataset = generate_tpch(SCALE_FACTOR, seed=SEED)
    queries = all_queries(dataset)
    names = sorted(queries)
    plans = [queries[name].plan for name in names]

    # Cold solo runs anchor the bit-identity checks and size the epoch.
    solo = HAPEEngine(default_server(), cache_budget_bytes=0)
    solo.register_dataset(dataset.tables)
    solo_sims = {(name, mode): solo.execute(queries[name].plan,
                                            mode).simulated_seconds
                 for name in names for mode in ("cpu", "hybrid")}
    cpu_total = sum(solo_sims[name, "cpu"] for name in names)

    # ------------------------------------------------------------------
    # 1. An open-loop epoch, replayed bit-identically from its seed.
    # ------------------------------------------------------------------
    def one_epoch():
        server = QueryServer(default_server(), preemption=True,
                             aging_seconds=cpu_total / 4,
                             cache_budget_bytes=0)
        server.register_dataset(dataset.tables)
        server.open_session("lat", priority="interactive",
                            max_concurrency=2,
                            slo_p99_seconds=6.0 * max(
                                solo_sims[name, "cpu"] for name in names))
        server.open_session("adhoc", priority="normal", max_concurrency=2)
        server.open_session("batch", priority="batch", max_concurrency=2)
        server.add_arrivals(poisson_arrivals(
            "lat", plans, rate_qps=len(names) / (cpu_total * 0.4),
            count=len(names), seed=ARRIVAL_SEED, mode="cpu"))
        server.add_arrivals(trace_arrivals(
            "adhoc", [(index * cpu_total / 8, plan)
                      for index, plan in enumerate(plans)], mode="hybrid"))
        server.add_arrivals([Arrival(at=0.0, tenant="batch", plan=plan,
                                     mode="hybrid", label=f"{name}/batch")
                             for name, plan in zip(names, plans)],
                            name="batch-drain")
        return server, server.run()

    server, report = one_epoch()
    print("== open-loop epoch: Poisson + trace + drain ==")
    print(report.describe())
    assert all(t.status == "completed" for t in report.tickets)
    assert fingerprint(one_epoch()[1]) == fingerprint(report)
    print(f"\nsame arrival seed ({ARRIVAL_SEED}) replays the epoch "
          "bit-identically: every timestamp, preemption count and "
          "simulated second")

    # ------------------------------------------------------------------
    # 2. Open-loop arrivals never change what a query computes/charges.
    # ------------------------------------------------------------------
    for ticket in report.tickets:
        if ticket.tenant == "lat":          # lat-pN -> round-robin plan
            index = int(ticket.label.rsplit("-p", 1)[1]) - 1
        elif ticket.tenant == "adhoc":      # adhoc-tN -> trace order
            index = int(ticket.label.rsplit("-t", 1)[1]) - 1
        else:                               # "Q5/batch" style drain labels
            index = names.index(ticket.label.split("/")[0])
        key = (names[index % len(names)], ticket.mode)
        assert ticket.result.simulated_seconds == solo_sims[key]
    print(f"all {len(report.tickets)} served queries report simulated "
          "seconds bit-identical to cold solo runs — open-loop arrivals, "
          "preemption and aging only ever add queue wait")

    # ------------------------------------------------------------------
    # 3. Preemption: an interactive arrival evicts running batch work.
    # ------------------------------------------------------------------
    q9_span = solo_sims["Q9", "cpu"]
    pre = QueryServer(default_server(), preemption=True,
                      aging_seconds=10.0, cache_budget_bytes=0)
    pre.register_dataset(dataset.tables)
    pre.open_session("etl", priority="batch")
    pre.open_session("bi", priority="interactive")
    victim = pre.submit("etl", queries["Q9"].plan, "cpu", label="victim")
    poacher = pre.submit("bi", queries["Q6"].plan, "cpu", label="poacher",
                         at=q9_span * 0.4)
    pre_report = pre.run()
    morsels = victim.result.morsels_dispatched
    boundary = q9_span * math.ceil(0.4 * morsels) / morsels
    print("\n== preemption at a morsel boundary ==")
    print(f"batch Q9 span {q9_span * 1e3:.3f}ms, interactive Q6 arrives "
          f"at {q9_span * 0.4 * 1e3:.3f}ms")
    assert victim.preemptions == 1 and victim.status == "completed"
    assert victim.attempts == 1 and victim.retries == 0
    assert abs(poacher.start_time - boundary) < 1e-12
    assert victim.result.simulated_seconds == q9_span
    print(f"victim killed at the boundary ({boundary * 1e3:.3f}ms, "
          f"{victim.wasted_seconds * 1e3:.3f}ms charged as wasted), the "
          "interactive query starts on the freed device immediately, and "
          "the re-run is bit-identical with no retry budget spent")
    assert pre_report.preemptions == 1

    # ------------------------------------------------------------------
    # 4. Aging bounds starvation under a 10:1 interactive flood.
    # ------------------------------------------------------------------
    q6_span = solo_sims["Q6", "cpu"]
    flood_count = max(int(10 * q9_span / q6_span), 20)
    aging = q9_span / 4

    def flood_epoch(aging_seconds):
        server = QueryServer(default_server(), preemption=True,
                             aging_seconds=aging_seconds,
                             cache_budget_bytes=0)
        server.register_dataset(dataset.tables)
        server.open_session("flood", priority="interactive",
                            max_concurrency=1, max_queue_depth=2048)
        server.open_session("etl", priority="batch", max_concurrency=1)
        server.add_arrivals(poisson_arrivals(
            "flood", [queries["Q6"].plan], rate_qps=1.0 / q6_span,
            count=flood_count, seed=77, mode="cpu"))
        server.submit("etl", queries["Q9"].plan, "cpu", label="starvable")
        server.run()
        return server

    aged = flood_epoch(aging)
    starved = flood_epoch(None)
    aged_batch = next(t for t in aged.last_report.tickets
                      if t.tenant == "etl")
    starved_batch = next(t for t in starved.last_report.tickets
                         if t.tenant == "etl")
    flood_end = max(t.finish_time for t in aged.last_report.tickets
                    if t.tenant == "flood")
    print("\n== aging under a 10:1 interactive flood ==")
    assert aged_batch.status == "completed"
    assert aged_batch.finish_time <= 2 * aging + 2 * q9_span
    assert aged_batch.finish_time < flood_end
    assert aged_batch.preemptions < starved_batch.preemptions
    assert aged_batch.finish_time < starved_batch.finish_time
    print(f"{flood_count} interactive arrivals vs one batch query: with "
          f"aging={aging * 1e3:.3f}ms the batch query finishes at "
          f"{aged_batch.finish_time * 1e3:.3f}ms — inside the flood "
          f"(ends {flood_end * 1e3:.3f}ms) after "
          f"{aged_batch.preemptions} preemption(s); without aging it "
          f"suffers {starved_batch.preemptions} and finishes at "
          f"{starved_batch.finish_time * 1e3:.3f}ms")

    # ------------------------------------------------------------------
    # 5. SLO grading and the metrics snapshot.
    # ------------------------------------------------------------------
    lat = report.tenants["lat"]
    print("\n== SLOs and metrics ==")
    print(f"tenant 'lat': p99 {lat.percentile_latency(99) * 1e3:.3f}ms vs SLO "
          f"{lat.slo_p99_seconds * 1e3:.3f}ms -> "
          f"{'met' if lat.slo_met else 'MISSED'} "
          f"(server-wide slos_met={report.slos_met})")
    assert report.slos_met is True

    snapshot = server.metrics()
    exposition = snapshot.to_prometheus()
    for line in exposition.splitlines():
        if line.startswith(("repro_server_completed_total ",
                            "repro_server_preemptions_total ",
                            "repro_server_slos_met ")) or \
                ('tenant="lat"' in line and "slo" in line):
            print(line)
    assert snapshot.to_prometheus() == exposition   # stable rendering
    assert server.health()["status"] == "ok"
    print("health:", server.health()["status"])
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
