#!/usr/bin/env python
"""A tour of the HAPE internals: traits, HetExchange operators, JIT pipelines.

Walks through what the engine does between a logical plan and execution:
heterogeneity-aware physical plans with explicit trait converters, pipeline
extraction, and the per-device JIT back-ends that generate specialized
kernel source for the same operators.
"""

from __future__ import annotations

from repro.codegen import CPUBackend, GPUBackend, break_into_pipelines
from repro.engine import HAPEEngine
from repro.hardware import default_server
from repro.relational import col, count_operators, lit
from repro.storage import generate_tpch
from repro.workloads import build_query


def main() -> None:
    engine = HAPEEngine(default_server())
    dataset = generate_tpch(scale_factor=0.005, seed=1)
    engine.register_dataset(dataset.tables)
    query = build_query("Q5", dataset)

    for mode in ("cpu", "gpu", "hybrid"):
        physical = engine.plan(query.plan, mode)
        operators = count_operators(physical)
        exchange_ops = {name: count for name, count in operators.items()
                        if name in ("Router", "DeviceCrossing", "MemMove")}
        print(f"[{mode:>6}] operators: {operators}")
        print(f"         HetExchange trait converters: {exchange_ops}")
        pipelines = break_into_pipelines(physical)
        print(f"         pipelines: {len(pipelines)} "
              f"({sum(1 for p in pipelines if p.device.value == 'gpu')} on GPU)")
    print()

    predicate = (col("l_shipdate") >= lit(19940101)) & (col("l_discount") > lit(0.05))
    projections = {"rev": col("l_extendedprice") * (lit(1.0) - col("l_discount"))}
    for backend in (CPUBackend(), GPUBackend()):
        kernel = backend.compile_filter_project(
            "q_pipeline", predicate=predicate, projections=projections)
        print(f"--- generated source ({backend.device_kind.value} back-end) ---")
        print(kernel.source)


if __name__ == "__main__":
    main()
