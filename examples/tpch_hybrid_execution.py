#!/usr/bin/env python
"""TPC-H on CPU-only, GPU-only and hybrid configurations (Figure 8's setup).

Runs all four evaluated queries (Q1, Q5, Q6, Q9*) on a generated dataset in
every engine configuration, compares the engine against the two simulated
commercial baselines, and prints per-device utilization for the hybrid runs
— the quantity behind the paper's "fraction of aggregate throughput"
discussion in Section 6.4.
"""

from __future__ import annotations

from repro.baselines import DBMSC, DBMSG
from repro.engine import HAPEEngine
from repro.errors import UnsupportedQueryError
from repro.hardware import default_server
from repro.storage import generate_tpch
from repro.workloads import EVALUATED_QUERIES, build_query


def main() -> None:
    topology = default_server()
    engine = HAPEEngine(topology)
    dataset = generate_tpch(scale_factor=0.02, seed=7)
    engine.register_dataset(dataset.tables)
    dbms_c = DBMSC(topology)
    dbms_g = DBMSG(topology)

    for name in EVALUATED_QUERIES:
        query = build_query(name, dataset)
        print(f"--- {name} ({query.category}) ---")
        results = {}
        for mode in ("cpu", "gpu", "hybrid"):
            results[mode] = engine.execute(query.plan, mode)
            print(f"  Proteus {mode:>6}: {results[mode].makespan_ms:9.3f} ms "
                  f"({results[mode].table.num_rows} result rows)")
        baseline = dbms_c.execute(query.plan, engine.catalog)
        print(f"  DBMS C        : {baseline.simulated_seconds * 1e3:9.3f} ms")
        try:
            baseline = dbms_g.execute(query.plan, engine.catalog,
                                      query_name=name)
            print(f"  DBMS G        : {baseline.simulated_seconds * 1e3:9.3f} ms")
        except UnsupportedQueryError as exc:
            print(f"  DBMS G        : unsupported ({exc})")
        hybrid = results["hybrid"]
        busy = ", ".join(f"{device}={100 * hybrid.busy_fraction(device):.0f}%"
                         for device in ("cpu0", "cpu1", "gpu0", "gpu1"))
        print(f"  hybrid device utilization: {busy}")
        pcie = sum(nbytes for link, nbytes in hybrid.link_bytes.items()
                   if link.startswith("pcie"))
        print(f"  hybrid PCIe traffic: {pcie / 1e6:.2f} MB")
        print()


if __name__ == "__main__":
    main()
