#!/usr/bin/env python
"""Quickstart: run a query on the simulated heterogeneous server.

Builds the paper's testbed (2 CPU sockets + 2 GTX-1080-class GPUs), loads a
small TPC-H dataset, and runs TPC-H Q6 in the three engine configurations of
the evaluation (CPU-only, GPU-only, hybrid), printing the result and the
simulated execution times.
"""

from __future__ import annotations

from repro.engine import HAPEEngine
from repro.hardware import default_server
from repro.storage import generate_tpch
from repro.workloads import build_query


def main() -> None:
    topology = default_server()
    print(topology.describe())
    print()

    engine = HAPEEngine(topology)
    dataset = generate_tpch(scale_factor=0.01, seed=2019)
    engine.register_dataset(dataset.tables)
    print(f"Loaded TPC-H SF={dataset.scale_factor} "
          f"({dataset.total_bytes / 1e6:.1f} MB across "
          f"{len(dataset.tables)} tables)")
    print()

    query = build_query("Q6", dataset)
    print("Logical plan:")
    print(query.plan.pretty())
    print()

    for mode in ("cpu", "gpu", "hybrid"):
        result = engine.execute(query.plan, mode)
        revenue = float(result.table.array("revenue")[0])
        print(f"[{mode:>6}] revenue = {revenue:,.2f}   "
              f"simulated time = {result.makespan_ms:.3f} ms")
    print()
    print("Physical plan for the hybrid configuration:")
    print(engine.explain(query.plan, "hybrid"))


if __name__ == "__main__":
    main()
