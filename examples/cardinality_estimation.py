#!/usr/bin/env python
"""Cardinality estimation: statistics, estimates and q-error accounting.

Registers a TPC-H dataset (statistics are collected automatically at
``register()`` time), inspects the per-column statistics the catalog now
holds, asks the estimator for row and working-set estimates, resolves
``mode="auto"`` from them, and executes a query to compare estimated
against actual per-operator cardinalities (the q-error report).
"""

from __future__ import annotations

from repro.engine import HAPEEngine
from repro.hardware import default_server
from repro.relational import agg_sum, col, lit, scan
from repro.stats import CardinalityEstimator
from repro.storage import generate_tpch
from repro.workloads import build_query


def main() -> None:
    engine = HAPEEngine(default_server())
    dataset = generate_tpch(scale_factor=0.02, seed=2019)
    engine.register_dataset(dataset.tables)

    # Per-column statistics were collected when the tables registered.
    stats = engine.catalog.statistics("orders")
    print("Catalog statistics for 'orders':")
    print(stats.describe())
    print()

    # The estimator turns them into row estimates for any logical plan.
    estimator = CardinalityEstimator(engine.catalog)
    selective = (scan("lineitem", ["l_orderkey", "l_extendedprice"])
                 .filter(col("l_orderkey") <= lit(100))
                 .aggregate([], [agg_sum(col("l_extendedprice"), "s")]))
    print(f"Estimated rows surviving the filter: "
          f"{estimator.estimate_rows(selective.child):,}")
    working_set = estimator.working_set(selective)
    print(f"Estimated working set: {working_set.total_bytes:,} bytes "
          f"(backed={working_set.backed})")
    print()

    # "auto" mode resolution is driven by the same estimates.
    for name, plan in (("selective aggregate", selective),
                       ("Q5", build_query("Q5", dataset).plan)):
        mode = engine.resolve_mode(plan, "auto")
        print(f"auto mode for {name}: {mode.value}")
    print()

    # Executing a query joins the estimates with the executor's actual
    # row counts into a per-operator q-error report.
    query = build_query("Q9", dataset)
    result = engine.execute(query.plan, "hybrid")
    print("Estimated vs. actual per operator (Q9, hybrid):")
    print(result.cardinality.describe())


if __name__ == "__main__":
    main()
