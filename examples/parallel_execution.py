#!/usr/bin/env python
"""Parallel execution: the ``workers`` knob and its determinism contract.

Runs the TPC-H suite on the simulated heterogeneous server at several
worker counts and shows the contract the engine guarantees: worker
threads only ever run pure kernel work (fused morsel chains, radix
partition passes), while every merge and every simulated-time charge
stays on the query thread in canonical plan order.  Result tables,
simulated seconds and device busy times are therefore **bit-identical
at every worker count** — threads buy wall-clock time, never different
answers.  The script ends with a parallel ``QueryServer`` drain whose
per-ticket simulated seconds match the serial drain exactly.
"""

from __future__ import annotations

import time

from repro.engine import HAPEEngine, available_cpus
from repro.hardware import default_server
from repro.server import QueryServer
from repro.storage import generate_tpch
from repro.workloads import all_queries

WORKER_COUNTS = (1, 2, "auto")


def run_suite(workers: int | str, dataset) -> tuple[dict, float]:
    """Run every TPC-H query in hybrid mode; return sims and wall-clock."""
    engine = HAPEEngine(default_server(), cache_budget_bytes=0,
                        workers=workers)
    engine.register_dataset(dataset.tables)
    start = time.perf_counter()
    sims = {}
    for name, query in all_queries(dataset).items():
        result = engine.execute(query.plan, "hybrid")
        sims[name] = (result.simulated_seconds,
                      tuple(sorted(result.device_busy.items())))
    wall = time.perf_counter() - start
    return sims, wall


def main() -> None:
    dataset = generate_tpch(scale_factor=0.02, seed=2019)
    print(f"host CPUs: {available_cpus()}\n")

    baseline = None
    for workers in WORKER_COUNTS:
        engine = HAPEEngine(default_server(), workers=workers)
        sims, wall = run_suite(workers, dataset)
        print(f"workers={workers!r:>6} (resolved {engine.workers}): "
              f"suite wall-clock {wall * 1e3:7.1f} ms")
        if baseline is None:
            baseline = sims
        else:
            assert sims == baseline, "sims must not depend on worker count"
    print("simulated seconds + device busy bit-identical "
          f"at workers in {WORKER_COUNTS}\n")

    # The knob is retunable mid-session: later queries pick up the new
    # worker count, and because merging stays canonical the results and
    # simulated times still match the single-worker run exactly.
    engine = HAPEEngine(default_server(), workers=1)
    engine.register_dataset(dataset.tables)
    q6 = all_queries(dataset)["Q6"].plan
    solo = engine.execute(q6, "hybrid").simulated_seconds
    engine.workers = 2
    assert engine.execute(q6, "hybrid").simulated_seconds == solo
    print(f"retuned engine.workers=2 mid-session: Q6 sim {solo:.6f} s "
          "(unchanged)\n")

    # Serving: QueryServer(workers=N) drains admitted queries from
    # DIFFERENT tenants concurrently.  Parallelism is explicit opt-in
    # here, and per-ticket simulated seconds stay bit-identical.
    def serve(workers: int) -> dict[int, float]:
        server = QueryServer(default_server(), workers=workers)
        server.register_dataset(dataset.tables)
        for tenant in ("analytics", "reporting"):
            server.open_session(tenant, max_concurrency=2)
        tickets = [server.submit(tenant, query.plan, mode="hybrid")
                   for tenant in ("analytics", "reporting")
                   for query in all_queries(dataset).values()]
        server.run()
        return {t.ticket_id: t.result.simulated_seconds for t in tickets}

    serial, parallel = serve(1), serve(2)
    assert serial == parallel
    print(f"QueryServer drain: {len(serial)} tickets across 2 tenants, "
          "per-ticket sims bit-identical at workers=1 and workers=2")


if __name__ == "__main__":
    main()
