#!/usr/bin/env python
"""Multi-query sessions: the cross-query kernel cache in action.

A dashboard-style workload: three queries that share the same filtered
dimension subplan (low-key suppliers joined against lineitem), submitted
to ONE session.  The first query populates the session's query cache; the
second and third reuse the dimension scan + filter (cache hits on a cold
query), and a full "dashboard refresh" loop afterwards is served entirely
from the cache — kernels are skipped functionally while simulated seconds
stay bit-identical to the cold pass.  Finally the supplier table is
replaced, which invalidates exactly the cached entries that read it.

See ``docs/CACHING.md`` for the cache lifecycle this script walks through:
populate -> hit -> invalidate -> evict.
"""

from __future__ import annotations

import time

from repro.engine import Session
from repro.relational import agg_sum, col, lit, scan
from repro.storage import generate_tpch


def dimension():
    """The shared dimension subplan: suppliers from the low nation keys."""
    return (scan("supplier", ["s_suppkey", "s_nationkey"])
            .filter(col("s_nationkey") < lit(10)))


def dashboard_query(measure: str, alias: str):
    """One dashboard panel: total of a lineitem measure over the dimension."""
    return (dimension()
            .join(scan("lineitem", ["l_suppkey", measure]),
                  ["s_suppkey"], ["l_suppkey"])
            .aggregate([], [agg_sum(col(measure), alias)]))


PANELS = {
    "revenue": dashboard_query("l_extendedprice", "total_revenue"),
    "quantity": dashboard_query("l_quantity", "total_quantity"),
    "discount": dashboard_query("l_discount", "total_discount"),
}


def run_pass(session: Session, label: str) -> dict[str, float]:
    simulated = {}
    print(f"{label}:")
    for panel, plan in PANELS.items():
        start = time.perf_counter()
        result = session.execute(plan, "hybrid")
        wall_ms = (time.perf_counter() - start) * 1e3
        simulated[panel] = result.simulated_seconds
        print(f"  {panel:>9}: {float(result.table.columns[0].values[0]):>14,.2f}"
              f"   simulated {result.makespan_ms:7.3f} ms"
              f"   wall {wall_ms:6.1f} ms   cache {result.cache.describe()}")
    return simulated


def main() -> None:
    session = Session()
    dataset = generate_tpch(scale_factor=0.01, seed=2019)
    session.register_dataset(dataset.tables)
    print(f"session cache budget: {session.cache_budget_bytes >> 20} MiB\n")

    # Cold pass: the first panel populates the cache; panels two and three
    # already reuse the shared dimension scan + filter (hits on cold
    # queries), while their joins/aggregates still miss.
    cold = run_pass(session, "cold dashboard (first render)")
    print()

    # Warm pass: a dashboard refresh re-submits the same three plans.
    # Every kernel evaluation is served from the session cache — note the
    # wall-clock drop while simulated times are bit-identical.
    warm = run_pass(session, "warm dashboard (refresh)")
    assert warm == cold, "warm runs must report cold-identical simulated time"
    print()

    stats = session.cache_stats
    print(f"session cache after refresh: {stats.describe()}\n")

    # Updating a dimension table invalidates exactly the cached entries
    # that read it; everything over the untouched tables stays warm.
    session.register_table(dataset.tables["supplier"], replace=True)
    refreshed = run_pass(session, "after supplier reload (invalidation)")
    assert refreshed == cold
    print()
    print(f"session cache at exit: {session.cache_stats.describe()}")


if __name__ == "__main__":
    main()
