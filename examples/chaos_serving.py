#!/usr/bin/env python
"""Fault-tolerant serving tour: outages, failover, retries, deadlines.

Walks the fault subsystem end to end (see ``docs/FAULTS.md``):

1. a mid-epoch dual-GPU outage with recovery: in-flight GPU work is
   killed and wasted, queued GPU-mode queries walk the degradation
   ladder ``gpu -> hybrid -> cpu``, post-recovery queries use the GPUs
   again — and every failed-over result stays bit-identical to a
   fault-free run in its final mode;
2. the paper's Q9 failure mode: a join build that overflows GPU memory
   raises ``OutOfDeviceMemoryError`` and the server degrades the query
   to a surviving mode;
3. transient faults retried under a ``RetryPolicy`` with simulated
   backoff (charged as queue wait), and a retry budget that fails
   cleanly when exhausted;
4. per-query deadlines cutting a too-slow query into ``timed_out``;
5. the circuit breaker benching a repeatedly-failing device and probing
   it back after a cooldown;
6. the empty-plan identity: fault machinery costs nothing when idle.

Run with ``PYTHONPATH=src python examples/chaos_serving.py`` (or
``make examples``).
"""

from __future__ import annotations

import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parent.parent
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro.engine import HAPEEngine  # noqa: E402
from repro.errors import OutOfDeviceMemoryError  # noqa: E402
from repro.faults import FaultPlan  # noqa: E402
from repro.hardware import default_server, gtx_1080  # noqa: E402
from repro.relational import agg_sum, col, lit, scan  # noqa: E402
from repro.server import QueryServer, RetryPolicy  # noqa: E402
from repro.storage import generate_tpch  # noqa: E402
from repro.workloads import all_queries  # noqa: E402

SCALE_FACTOR = 0.01
SEED = 2019


def main() -> int:
    dataset = generate_tpch(SCALE_FACTOR, seed=SEED)
    queries = all_queries(dataset)

    # ------------------------------------------------------------------
    # 1. A mid-epoch dual-GPU outage with recovery.
    # ------------------------------------------------------------------
    # Fault-free pass first, to place the outage window inside the run.
    reference = QueryServer(default_server())
    reference.register_dataset(dataset.tables)
    for name, query in queries.items():
        reference.submit("gpu-tenant", query.plan, "gpu",
                         label=f"{name}/gpu")
    fault_free = reference.run()
    kill_at = fault_free.makespan * 0.25
    recover_at = fault_free.makespan * 2.0

    plan = (FaultPlan()
            .fail_device("gpu0", at=kill_at, recover_at=recover_at)
            .fail_device("gpu1", at=kill_at, recover_at=recover_at))
    server = QueryServer(default_server(), fault_plan=plan)
    server.register_dataset(dataset.tables)
    for name, query in queries.items():
        server.submit("gpu-tenant", query.plan, "gpu", label=f"{name}/gpu")
    report = server.run()
    print("== dual-GPU outage mid-epoch ==")
    print(report.describe())
    assert all(t.status == "completed" for t in report.tickets)
    assert report.failovers > 0 and report.wasted_seconds > 0.0

    solo = HAPEEngine(default_server(), cache_budget_bytes=0)
    solo.register_dataset(dataset.tables)
    for ticket in report.tickets:
        if ticket.failovers == 0:
            continue
        name = ticket.label.split("/")[0]
        check = solo.execute(queries[name].plan, ticket.final_mode)
        assert ticket.result.simulated_seconds == check.simulated_seconds
    print(f"\n{report.failovers} failovers, "
          f"{report.wasted_seconds * 1e3:.3f}ms simulated work wasted, "
          "every survivor bit-identical to a fault-free run in its "
          "final mode")

    # ------------------------------------------------------------------
    # 2. The paper's Q9 failure mode: GPU overflow degrades the query.
    # ------------------------------------------------------------------
    # Four copies of the same filter: the estimator's independence
    # assumption discounts the build 16x below its true size, so the
    # optimizer keeps the join GPU-resident and the overflow only shows
    # up when the executor enforces device memory at run time.
    filtered = scan("orders")
    for _ in range(4):
        filtered = filtered.filter(col("o_orderkey") >= lit(7500))
    overflow = (filtered
                .join(scan("lineitem", ["l_orderkey", "l_extendedprice"]),
                      ["o_orderkey"], ["l_orderkey"])
                .aggregate([], [agg_sum(col("l_extendedprice"), "s")]))
    tiny_gpu = gtx_1080().with_memory_capacity(96 * 1024)
    probe = HAPEEngine(default_server(gpu_spec=tiny_gpu))
    probe.register_dataset(dataset.tables)
    try:
        probe.execute(overflow, "hybrid")
    except OutOfDeviceMemoryError as exc:
        print(f"\nQ9 failure mode on a 96KB GPU: {exc}")
    q9_server = QueryServer(default_server(gpu_spec=tiny_gpu))
    q9_server.register_dataset(dataset.tables)
    ticket = q9_server.submit("bi", overflow, "hybrid", label="q9ish")
    q9_server.run()
    assert ticket.status == "completed" and ticket.final_mode == "cpu"
    print(f"served anyway: {ticket.failovers} failover, completed in "
          f"{ticket.final_mode!r} mode")

    # ------------------------------------------------------------------
    # 3. Transient faults: retries with simulated backoff.
    # ------------------------------------------------------------------
    flaky_plan = FaultPlan().fail_attempt("Q1/cpu", attempt=1, fraction=0.5)
    retry_server = QueryServer(
        default_server(), fault_plan=flaky_plan,
        retry_policy=RetryPolicy(max_attempts=3, backoff_seconds=0.05))
    retry_server.register_dataset(dataset.tables)
    flaky = retry_server.submit("bi", queries["Q1"].plan, "cpu",
                                label="Q1/cpu")
    retry_server.run()
    assert flaky.status == "completed" and flaky.retries == 1
    print(f"\ntransient fault: attempt 1 died half-way "
          f"({flaky.wasted_seconds * 1e3:.3f}ms wasted), retried after "
          f"{flaky.queue_wait * 1e3:.1f}ms backoff, completed")

    doomed_plan = FaultPlan().transient_errors(rate=1.0, labels=("Q6/cpu",))
    doomed_server = QueryServer(
        default_server(), fault_plan=doomed_plan,
        retry_policy=RetryPolicy(max_attempts=2, backoff_seconds=0.01))
    doomed_server.register_dataset(dataset.tables)
    doomed = doomed_server.submit("bi", queries["Q6"].plan, "cpu",
                                  label="Q6/cpu")
    doomed_report = doomed_server.run()
    assert doomed.status == "failed" and doomed_report.failed == 1
    print(f"retry budget exhausted cleanly: {doomed.error}")

    # ------------------------------------------------------------------
    # 4. Deadlines bound queueing and execution together.
    # ------------------------------------------------------------------
    deadline_server = QueryServer(default_server())
    deadline_server.register_dataset(dataset.tables)
    q5_sim = solo.execute(queries["Q5"].plan, "cpu").simulated_seconds
    hurried = deadline_server.submit("bi", queries["Q5"].plan, "cpu",
                                     label="hurried", deadline=q5_sim / 2)
    deadline_server.run()
    assert hurried.status == "timed_out"
    print(f"\ndeadline: {hurried.error}")

    # ------------------------------------------------------------------
    # 5. The circuit breaker benches a repeatedly-failing GPU.
    # ------------------------------------------------------------------
    breaker_plan = FaultPlan().fail_attempt("victim", attempt=1,
                                            device="gpu0", fraction=0.5)
    breaker_server = QueryServer(default_server(), fault_plan=breaker_plan,
                                 breaker_threshold=1,
                                 breaker_cooldown_seconds=0.5)
    breaker_server.register_dataset(dataset.tables)
    victim = breaker_server.submit("bi", queries["Q1"].plan, "gpu",
                                   label="victim")
    healed = breaker_server.submit("bi", queries["Q1"].plan, "gpu",
                                   label="healed", at=2.0)
    breaker_server.run()
    assert victim.status == "completed" and victim.failovers == 1
    assert healed.status == "completed" and healed.final_mode == "gpu"
    print("\nbreaker: gpu0 benched after the fault, probed back after the "
          f"cooldown; the t=2.0s query ran gpu-mode in "
          f"{healed.result.simulated_seconds * 1e3:.3f}ms")

    # ------------------------------------------------------------------
    # 6. Empty-plan identity: fault machinery costs nothing when idle.
    # ------------------------------------------------------------------
    idle = QueryServer(default_server(), fault_plan=FaultPlan())
    idle.register_dataset(dataset.tables)
    for name, query in queries.items():
        idle.submit("bi", query.plan, "gpu", label=f"{name}/gpu")
    idle_report = idle.run()
    assert idle_report.makespan == fault_free.makespan
    for left, right in zip(idle_report.tickets, fault_free.tickets):
        assert left.result.simulated_seconds == right.result.simulated_seconds
    print("\nempty FaultPlan: served epoch bit-identical to the fault-free "
          "serving layer")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
