#!/usr/bin/env python
"""The out-of-GPU co-processed radix join (Section 5 / Figure 7).

Shows the intra-operator co-processing algorithm end to end: CPU-side
low-fan-out co-partitioning, a single pass over each PCIe link, and the
scratchpad-conscious partitioned join on each GPU — then sweeps the
paper-scale analytic model over the Figure 7 sizes and prints the regenerated
series, including the scaling from adding the second GPU.
"""

from __future__ import annotations

from repro.hardware import default_server
from repro.perf import FIGURE7_SIZES_MTUPLES, JoinModels, format_series
from repro.workloads import run_coprocessed_join


def main() -> None:
    topology = default_server()

    print("Reduced-scale executable run (500k tuples per table):")
    for num_gpus in (1, 2):
        topology.reset()
        run = run_coprocessed_join(500_000, num_gpus=num_gpus,
                                   topology=topology)
        pcie = {link.name: link.bytes_moved for link in topology.links
                if link.name.startswith("pcie")}
        print(f"  {num_gpus} GPU(s): simulated {run.simulated_seconds * 1e3:8.3f} ms, "
              f"join output rows = {run.output_rows}, PCIe bytes = {pcie}")
    print()

    models = JoinModels(topology)
    series = models.figure7_series()
    print(format_series("Paper-scale sweep (Figure 7):", series))
    print()
    largest = int(FIGURE7_SIZES_MTUPLES[-1] * 1e6)
    one = models.coprocessing_seconds(largest, num_gpus=1)
    two = models.coprocessing_seconds(largest, num_gpus=2)
    print(f"Adding the second GPU at {largest / 1e9:.1f}B tuples: "
          f"{one / two:.2f}x (paper: ~1.7x)")
    print(f"Speed-up over DBMS C at the largest size: "
          f"{models.dbms_c_seconds(largest) / two:.1f}x (paper: 4.4x)")
    print(f"Speed-up over DBMS G at 512M tuples: "
          f"{models.dbms_g_out_of_gpu_seconds(512_000_000) / models.coprocessing_seconds(512_000_000, num_gpus=2):.1f}x "
          f"(paper: 12.5x)")


if __name__ == "__main__":
    main()
